"""The Sigma-Model and its explicit-state machinery (Sec. III-C).

The Sigma-Model represents each request's resource allocations at every
state *explicitly* through variables ``a_R(s_i, r) >= 0`` that are
lower-bounded by the actual allocation whenever the request is active:

    ``a_R(s_i, r) >= alloc(R, r) - M * (1 - Sigma(R, s_i))``      (7)/(8)

with the per-state capacity constraint

    ``sum_R a_R(s_i, r) <= c_S(r)``                                (9)

The paper proves this relaxation strictly dominates the Delta-Model's:
fractionally-smeared event assignments cannot hide allocations, because
``Sigma(R, s_i)`` aggregates the assignment prefix.

The explicit-state machinery is shared with the cSigma-Model via
:class:`ExplicitStateMixin`; the two differ only in the event layout
(``2|R|`` bijective events here, ``|R|+1`` compactified events there)
and in the cSigma-specific reductions enabled by default.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.mip.constraint import Sense
from repro.mip.expr import LinExpr, Variable
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.tvnep.base import ActivityStatus, ModelOptions, TemporalModelBase
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["ExplicitStateMixin", "SigmaModel"]


class _LazyUsageMap(dict):
    """``state_usage`` backed by columnar (cols, coefs) entries.

    The load-balancing objective is the only consumer of the per-state
    usage expressions, so the columnar state builder records raw column
    entries and this map materializes a :class:`LinExpr` only when a
    key is actually read (``get``/``[]``/``in``).  Unread entries never
    pay the dict-assembly cost.
    """

    def __init__(self, model, entries: dict) -> None:
        super().__init__()
        self._model = model
        self._entries = entries

    def _materialize(self, key) -> LinExpr:
        cols, coefs = self._entries[key]
        variables = self._model._vars
        expr = LinExpr({variables[c]: coef for c, coef in zip(cols, coefs)})
        self[key] = expr
        return expr

    def __missing__(self, key) -> LinExpr:
        if key in self._entries:
            return self._materialize(key)
        raise KeyError(key)

    def get(self, key, default=None):
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        if key in self._entries:
            return self._materialize(key)
        return default

    def __contains__(self, key) -> bool:
        return dict.__contains__(self, key) or key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class ExplicitStateMixin:
    """Explicit per-request state-allocation variables (Constraints 7-9).

    Implements :meth:`TemporalModelBase._build_states` for both the
    Sigma- and the cSigma-Model.  Honors the presolve state-space
    reduction of Sec. IV-C via the base class's activity table:

    * ``INACTIVE`` (request surely not running at the state) — no
      variable, no constraint;
    * ``ACTIVE`` (surely running) — the allocation expression is folded
      directly into the capacity constraint (9), saving the variable
      *and* tightening the relaxation;
    * ``UNDECIDED`` — the full Constraint (7)/(8) gadget.
    """

    def _build_states(self) -> None:
        if self._columnar:
            self._build_states_columnar()
            return
        model = self.model
        substrate = self.substrate
        #: ``a_R`` variables keyed by (request name, state, resource)
        self.state_alloc: dict[tuple[str, int, object], Variable] = {}
        #: total usage expression per (state, resource) — consumed by the
        #: load-balancing objective (Sec. IV-E.3)
        self.state_usage: dict[tuple[int, object], LinExpr] = {}

        # cache each request's allocation expression per resource
        alloc_cache: dict[tuple[str, object], LinExpr] = {}
        for request in self.requests:
            emb = self.embeddings[request.name]
            for resource in substrate.resources:
                expr = emb.alloc(resource)
                if expr.terms:
                    alloc_cache[(request.name, resource)] = expr

        for state in self.events.states:
            for resource in substrate.resources:
                capacity = substrate.capacity(resource)
                usage = LinExpr()
                relevant = False
                for request in self.requests:
                    name = request.name
                    alloc = alloc_cache.get((name, resource))
                    if alloc is None:
                        continue
                    status = self.activity_status(name, state)
                    if status == ActivityStatus.INACTIVE:
                        continue
                    relevant = True
                    if status == ActivityStatus.ACTIVE:
                        usage.add_expr(alloc)
                        continue
                    # UNDECIDED: full Constraint (7)/(8) gadget
                    a = model.continuous_var(
                        f"a[{name}][s{state}][{resource}]", lb=0.0
                    )
                    self.state_alloc[(name, state, resource)] = a
                    big_m = self.embeddings[name].alloc_upper_bound(resource)
                    activity = self.activity_expr(name, state)
                    model.add_constr(
                        a >= alloc - (1 - activity) * big_m,
                        name=f"stateLB[{name}][s{state}][{resource}]",
                    )
                    usage.add_term(a, 1.0)
                if relevant:
                    self.state_usage[(state, resource)] = usage
                    # Constraint (9)
                    model.add_constr(
                        usage <= capacity,
                        name=f"cap[s{state}][{resource}]",
                    )

    def _build_states_columnar(self) -> None:
        """Columnar emission of Constraints (7)-(9).

        Same row sequence as the legacy loop above; allocation terms are
        precomputed once per (request, resource) as column/coefficient
        lists and spliced into each state's rows instead of re-walking
        ``LinExpr`` dicts per state.  The activity status depends only
        on (request, state), so it is resolved once per state and shared
        by all resources rather than re-queried in the innermost loop.
        """
        model = self.model
        substrate = self.substrate
        self.state_alloc: dict[tuple[str, int, object], Variable] = {}
        usage_entries: dict[tuple[int, object], tuple[list[int], list[float]]] = {}
        self.state_usage = _LazyUsageMap(model, usage_entries)

        from repro.temporal.dependency import PointKind

        em = model.columnar_emitter()
        # allocation entries grouped per resource, request order preserved:
        # (name, cols, coefs, -coefs, bigM)
        by_resource: dict[
            object, list[tuple[str, list[int], list[float], list[float], float]]
        ] = {}
        for request in self.requests:
            emb = self.embeddings[request.name]
            for resource, cols, coefs, neg_coefs, big_m in emb.alloc_profile():
                by_resource.setdefault(resource, []).append(
                    (request.name, cols, coefs, neg_coefs, big_m)
                )
        names = [request.name for request in self.requests]

        for state in self.events.states:
            status_of = {
                name: self.activity_status(name, state) for name in names
            }
            prefix_cache: dict[str, tuple[list[int], list[int]]] = {}
            for resource in substrate.resources:
                entries = by_resource.get(resource)
                if not entries:
                    continue
                capacity = substrate.capacity(resource)
                u_cols: list[int] = []
                u_coefs: list[float] = []
                relevant = False
                for name, cols, coefs, neg_coefs, big_m in entries:
                    status = status_of[name]
                    if status == ActivityStatus.INACTIVE:
                        continue
                    relevant = True
                    if status == ActivityStatus.ACTIVE:
                        u_cols.extend(cols)
                        u_coefs.extend(coefs)
                        continue
                    # UNDECIDED: full Constraint (7)/(8) gadget
                    a = model.continuous_var(
                        f"a[{name}][s{state}][{resource}]", lb=0.0
                    )
                    self.state_alloc[(name, state, resource)] = a
                    # a - alloc - bigM * start_prefix + bigM * end_prefix
                    # >= -bigM  (the from_sides normal form of (7)/(8))
                    row = em.add_row(
                        f"stateLB[{name}][s{state}][{resource}]",
                        Sense.GE,
                        -big_m,
                    )
                    em.add_term(row, a, 1.0)
                    em.add_row_terms(row, cols, neg_coefs)
                    prefixes = prefix_cache.get(name)
                    if prefixes is None:
                        prefixes = (
                            self._prefix_cols(name, PointKind.START, state),
                            self._prefix_cols(name, PointKind.END, state),
                        )
                        prefix_cache[name] = prefixes
                    start_cols, end_cols = prefixes
                    em.add_row_terms(row, start_cols, [-big_m] * len(start_cols))
                    em.add_row_terms(row, end_cols, [big_m] * len(end_cols))
                    u_cols.append(a.index)
                    u_coefs.append(1.0)
                if relevant:
                    usage_entries[(state, resource)] = (u_cols, u_coefs)
                    # Constraint (9)
                    row = em.add_row(
                        f"cap[s{state}][{resource}]", Sense.LE, capacity
                    )
                    em.add_row_terms(row, u_cols, u_coefs)
        em.flush()

    def num_state_variables(self) -> int:
        """How many ``a_R`` variables were actually created (after the
        presolve reduction) — reported by the ablation benchmarks."""
        return len(self.state_alloc)


class SigmaModel(ExplicitStateMixin, TemporalModelBase):
    """The (non-compact) Sigma-Model: ``2|R|`` events, explicit states.

    By default this is the paper's *plain* Sigma-Model (no dependency
    cuts, no reductions) so that the Figure 3/4 comparison measures what
    the paper measured; pass ``options=ModelOptions()`` to enable all
    strengthening features on the full layout.
    """

    layout = "full"
    formulation_name = "sigma"

    def __init__(
        self,
        substrate: SubstrateNetwork,
        requests: Sequence[Request],
        fixed_mappings: Mapping[str, NodeMapping] | None = None,
        force_embedded: Sequence[str] = (),
        force_rejected: Sequence[str] = (),
        options: ModelOptions | None = None,
    ) -> None:
        super().__init__(
            substrate,
            requests,
            fixed_mappings=fixed_mappings,
            force_embedded=force_embedded,
            force_rejected=force_rejected,
            options=options or ModelOptions.plain(),
        )
