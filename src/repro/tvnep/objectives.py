"""The paper's objective functions (Sec. IV-E).

Each function configures the objective of an already-built temporal
model (any of Delta/Sigma/cSigma).  Objectives 2-4 assume a *fixed* set
of requests (the paper: "given a fixed set of requests to be
embedded"); callers express that by constructing the model with
``force_embedded=[...]`` — the helpers here verify it.

1.  :func:`set_access_control` — maximize accepted revenue
    ``sum_R x_R * d_R * sum_v c_R(v)``.
2.  :func:`set_max_earliness` — maximize early-start fees
    ``sum_R d_R * (1 - (t^+ - t^s) / (t^e - d - t^s))``.
3.  :func:`set_balance_node_load` — maximize the number of substrate
    nodes never loaded above a fraction ``f`` of their capacity.
4.  :func:`set_disable_links` — maximize the number of substrate links
    that carry no flow over the whole horizon (energy saving).

An additional :func:`set_min_makespan` (minimize the latest end time)
is provided as a natural extension the paper mentions in its
introduction ("makespan minimization").
"""

from __future__ import annotations

from repro.exceptions import ModelingError
from repro.mip.expr import LinExpr, Variable, quicksum
from repro.mip.model import ObjectiveSense
from repro.tvnep.base import TemporalModelBase

__all__ = [
    "set_access_control",
    "set_max_earliness",
    "set_balance_node_load",
    "set_disable_links",
    "set_min_makespan",
    "OBJECTIVES",
]


def _require_fixed_set(model: TemporalModelBase, objective: str) -> None:
    """Objectives 2-4 are defined over a fixed embedded set."""
    loose = [
        emb.request.name
        for emb in model.embeddings.values()
        if emb.x_embed.lb < 0.5  # not pinned to 1
    ]
    if loose:
        raise ModelingError(
            f"{objective} requires a fixed request set; build the model "
            f"with force_embedded covering {loose}"
        )


def set_access_control(model: TemporalModelBase) -> None:
    """Sec. IV-E.1: maximize provider revenue of the accepted set."""
    model.model.set_objective(
        quicksum(
            emb.x_embed * emb.request.revenue()
            for emb in model.embeddings.values()
        ),
        ObjectiveSense.MAXIMIZE,
    )


def set_max_earliness(model: TemporalModelBase) -> None:
    """Sec. IV-E.2: maximize early-start fees of a fixed request set.

    The per-request fee is ``d_R`` when started as early as possible and
    0 when started as late as possible, interpolated linearly.  A
    request without flexibility (``t^e - d - t^s = 0``) contributes the
    constant ``d_R`` — it is trivially "as early as possible" (the
    paper's formula is undefined there; see DESIGN.md).
    """
    _require_fixed_set(model, "max-earliness")
    objective = LinExpr()
    for request in model.requests:
        flexibility = request.flexibility
        if flexibility <= 1e-12:
            objective.add_expr(request.duration)
            continue
        # d * (1 - (t+ - t^s)/flex) = d + d*t^s/flex - (d/flex) * t+
        scale = request.duration / flexibility
        objective.add_expr(
            request.duration + scale * request.earliest_start
        )
        objective.add_term(model.t_start[request.name], -scale)
    model.model.set_objective(objective, ObjectiveSense.MAXIMIZE)


def set_balance_node_load(
    model: TemporalModelBase, load_fraction: float = 0.5
) -> dict[object, Variable]:
    """Sec. IV-E.3: maximize nodes that stay below ``f * capacity``.

    Introduces a binary ``F(N_s)`` per substrate node with

        ``(1 - F) * (1 - f) * c_S >= usage(s_i, N_s) - f * c_S``

    for every state, i.e. ``F = 1`` certifies the node never exceeds
    ``f`` of its capacity.  Returns the ``F`` variables for inspection.
    """
    if not 0 <= load_fraction < 1:
        raise ModelingError("load fraction f must lie in [0, 1)")
    _require_fixed_set(model, "balance-node-load")
    state_usage = getattr(model, "state_usage", None)
    if state_usage is None:
        raise ModelingError(
            "model exposes no state_usage map; build states first"
        )
    flags: dict[object, Variable] = {}
    for node in model.substrate.nodes:
        flag = model.model.binary_var(f"F[{node}]")
        flags[node] = flag
        cap = model.substrate.node_capacity(node)
        for state in model.events.states:
            usage = state_usage.get((state, node))
            if usage is None:
                continue
            # usage - f*cap <= (1 - F)(1 - f)*cap
            model.model.add_constr(
                usage + flag * ((1 - load_fraction) * cap)
                <= cap,
                name=f"loadF[{node}][s{state}]",
            )
    model.model.set_objective(
        quicksum(flags.values()), ObjectiveSense.MAXIMIZE
    )
    return flags


def set_disable_links(model: TemporalModelBase) -> dict[object, Variable]:
    """Sec. IV-E.4: maximize links disabled over the whole horizon.

    Introduces a binary ``D(L_s)`` per substrate link with

        ``sum_{R, L_v} x_E(L_v, L_s) <= |R| * (1 - D(L_s))``

    so ``D = 1`` certifies no virtual link ever routes over ``L_s``.
    Returns the ``D`` variables.
    """
    _require_fixed_set(model, "disable-links")
    flags: dict[object, Variable] = {}
    for ls in model.substrate.links:
        flag = model.model.binary_var(f"D[{ls}]")
        flags[ls] = flag
        total_flow = LinExpr()
        for emb in model.embeddings.values():
            for lv in emb.request.vnet.links:
                total_flow.add_term(emb.x_link[(lv, ls)], 1.0)
        # each x_E term is at most 1, so the term count is a valid big-M
        big_m = len(total_flow.terms)
        if not total_flow.terms:
            # nothing can ever use the link: D is free, fix it on
            model.model.fix_var(flag, 1.0)
            continue
        model.model.add_constr(
            total_flow + flag * big_m <= big_m,
            name=f"disable[{ls}]",
        )
    model.model.set_objective(
        quicksum(flags.values()), ObjectiveSense.MAXIMIZE
    )
    return flags


def set_min_makespan(model: TemporalModelBase) -> Variable:
    """Extension: minimize the latest end time of a fixed request set."""
    _require_fixed_set(model, "min-makespan")
    makespan = model.model.continuous_var("makespan", lb=0.0, ub=model.T)
    for request in model.requests:
        model.model.add_constr(
            model.t_end[request.name] <= makespan,
            name=f"mk[{request.name}]",
        )
    model.model.set_objective(makespan, ObjectiveSense.MINIMIZE)
    return makespan


#: registry used by the evaluation harness (Figures 5/6 sweep over these)
OBJECTIVES = {
    "access_control": set_access_control,
    "max_earliness": set_max_earliness,
    "balance_node_load": set_balance_node_load,
    "disable_links": set_disable_links,
    "min_makespan": set_min_makespan,
}
