"""The Delta-Model — state *changes* at event points (Sec. III-B).

The Delta-Model is the paper's baseline continuous-time formulation.
Instead of representing per-request state allocations, it encodes only
the allocation *difference* ``Delta_e(r)`` at each of the ``2|R|``
event points, via the big-M selection constraints (3)-(6):

    ``Delta_e(r) <= +alloc(R, r) + c_S(r) * (1 - chi^+_R(e))``     (3)
    ``Delta_e(r) >= +alloc(R, r) - 2 c_S(r) * (1 - chi^+_R(e))``   (4)
    ``Delta_e(r) <= -alloc(R, r) + 2 c_S(r) * (1 - chi^-_R(e))``   (5)
    ``Delta_e(r) >= -alloc(R, r) - c_S(r) * (1 - chi^-_R(e))``     (6)

State feasibility bounds the running prefix sums:

    ``0 <= sum_{j<=i} Delta_{e_j}(r) <= c_S(r)``  for every state ``s_i``.

The paper's Sec. III-B example shows why this relaxation is weak:
half-half smeared assignments (``chi = 0.5``) make every constraint
slack, so ``Delta`` can be 0 (allocations invisible) or negative
(allocations nullified).  The computational evaluation confirms the
model collapses already at modest flexibilities (Figure 3/4).

One practical addition over the paper's text: constraints (3)-(6) pin
``Delta_e(r)`` only for requests that can *use* resource ``r``.  When
the endpoint hosted at ``e`` belongs to a request that cannot use
``r``, an explicit zero-pinning pair keeps ``Delta_e(r)`` honest (the
paper implicitly ranges (3)-(6) over all request/resource pairs, which
is equivalent but much larger).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.mip.expr import LinExpr, Variable
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.temporal.dependency import PointKind
from repro.tvnep.base import ModelOptions, TemporalModelBase
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["DeltaModel"]


class DeltaModel(TemporalModelBase):
    """The Delta-Model: ``2|R|`` events, big-M state changes.

    Defaults to the paper's plain formulation (no cuts/reductions);
    pass ``options=ModelOptions()`` to strengthen it — the state-change
    encoding itself is unchanged, which is exactly what the relaxation
    ablation isolates.
    """

    layout = "full"
    formulation_name = "delta"

    def __init__(
        self,
        substrate: SubstrateNetwork,
        requests: Sequence[Request],
        fixed_mappings: Mapping[str, NodeMapping] | None = None,
        force_embedded: Sequence[str] = (),
        force_rejected: Sequence[str] = (),
        options: ModelOptions | None = None,
    ) -> None:
        super().__init__(
            substrate,
            requests,
            fixed_mappings=fixed_mappings,
            force_embedded=force_embedded,
            force_rejected=force_rejected,
            options=options or ModelOptions.plain(),
        )

    # ------------------------------------------------------------------
    def _build_states(self) -> None:
        model = self.model
        substrate = self.substrate

        # which requests can use which resources (sparse big-M pinning)
        alloc_cache: dict[tuple[str, object], LinExpr] = {}
        users: dict[object, list[str]] = {r: [] for r in substrate.resources}
        for request in self.requests:
            emb = self.embeddings[request.name]
            for resource in substrate.resources:
                expr = emb.alloc(resource)
                if expr.terms:
                    alloc_cache[(request.name, resource)] = expr
                    users[resource].append(request.name)

        #: ``Delta`` variables keyed by (event, resource)
        self.delta: dict[tuple[int, object], Variable] = {}
        for event in self.events.events:
            for resource in substrate.resources:
                cap = substrate.capacity(resource)
                if not users[resource]:
                    continue  # resource untouched by any request
                self.delta[(event, resource)] = model.continuous_var(
                    f"delta[e{event}][{resource}]", lb=-cap, ub=cap
                )

        # Constraints (3)-(6)
        for request in self.requests:
            name = request.name
            start_range = self.event_range(name, PointKind.START)
            end_range = self.event_range(name, PointKind.END)
            for resource in substrate.resources:
                alloc = alloc_cache.get((name, resource))
                if alloc is None:
                    continue
                cap = substrate.capacity(resource)
                for event in start_range:
                    delta = self.delta[(event, resource)]
                    chi = self.chi_start[(name, event)]
                    model.add_constr(
                        delta <= alloc + (1 - chi) * cap,
                        name=f"d3[{name}][e{event}][{resource}]",
                    )
                    model.add_constr(
                        delta >= alloc - (1 - chi) * (2 * cap),
                        name=f"d4[{name}][e{event}][{resource}]",
                    )
                for event in end_range:
                    delta = self.delta[(event, resource)]
                    chi = self.chi_end[(name, event)]
                    model.add_constr(
                        delta <= -alloc + (1 - chi) * (2 * cap),
                        name=f"d5[{name}][e{event}][{resource}]",
                    )
                    model.add_constr(
                        delta >= -alloc - (1 - chi) * cap,
                        name=f"d6[{name}][e{event}][{resource}]",
                    )

        # zero-pinning: an event hosting a non-user's endpoint changes
        # nothing on the resource
        for (event, resource), delta in self.delta.items():
            cap = substrate.capacity(resource)
            hosted_users = LinExpr()
            for name in users[resource]:
                var = self.chi_start.get((name, event))
                if var is not None:
                    hosted_users.add_term(var, 1.0)
                var = self.chi_end.get((name, event))
                if var is not None:
                    hosted_users.add_term(var, 1.0)
            model.add_constr(
                delta <= hosted_users * cap,
                name=f"pin+[e{event}][{resource}]",
            )
            model.add_constr(
                delta >= hosted_users * (-cap),
                name=f"pin-[e{event}][{resource}]",
            )

        # state feasibility: 0 <= prefix sums <= capacity
        #: total usage expression per (state, resource) — consumed by the
        #: load-balancing objective (Sec. IV-E.3)
        self.state_usage: dict[tuple[int, object], LinExpr] = {}
        prefix: dict[object, LinExpr] = {
            resource: LinExpr() for resource in substrate.resources
        }
        for state in self.events.states:
            # state s_i lies after event e_i: include Delta_{e_i}
            for resource in substrate.resources:
                if not users[resource]:
                    continue
                var = self.delta.get((state, resource))
                if var is not None:
                    prefix[resource] = prefix[resource] + var
                expr = prefix[resource]
                if not expr.terms:
                    continue
                self.state_usage[(state, resource)] = expr
                cap = substrate.capacity(resource)
                model.add_constr(
                    expr <= cap, name=f"capD[s{state}][{resource}]"
                )
                model.add_constr(
                    expr >= 0, name=f"nonneg[s{state}][{resource}]"
                )

    def num_delta_variables(self) -> int:
        """How many ``Delta`` variables were created (ablation metric)."""
        return len(self.delta)
