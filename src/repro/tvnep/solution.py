"""Solution objects for the TVNEP.

A :class:`TemporalSolution` is the output promised by Definition 2.1: a
static embedding ``(x_R, x_V, x_E)`` plus start/end times per request.
It is deliberately decoupled from the MIP machinery — the greedy
algorithm, the exact models and hand-written tests all produce the same
type, and the independent verifier in :mod:`repro.tvnep.feasibility`
consumes it.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.temporal.interval import Interval

__all__ = ["ScheduledRequest", "TemporalSolution"]


@dataclass
class ScheduledRequest:
    """One request's part of a TVNEP solution.

    Attributes
    ----------
    request:
        The original request.
    embedded:
        ``x_R`` — whether the request was accepted.
    start, end:
        ``t^+ / t^-``.  Definition 2.1 fixes these even for rejected
        requests; they simply carry no allocations then.
    node_mapping:
        ``virtual node -> substrate node`` (empty when rejected).
    link_flows:
        ``{virtual link: {substrate link: fraction}}`` — the splittable
        unit flow per virtual link (empty when rejected or co-located).
    """

    request: Request
    embedded: bool
    start: float
    end: float
    node_mapping: dict[Hashable, Hashable] = field(default_factory=dict)
    link_flows: dict[tuple, dict[tuple, float]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def interval(self) -> Interval:
        """The activity interval ``[t^+, t^-]``."""
        return Interval(self.start, self.end)

    def node_usage(self) -> dict[Hashable, float]:
        """Substrate-node demand while active (empty when rejected)."""
        if not self.embedded:
            return {}
        usage: dict[Hashable, float] = {}
        for v, s in self.node_mapping.items():
            usage[s] = usage.get(s, 0.0) + self.request.vnet.node_demand(v)
        return usage

    def link_usage(self) -> dict[tuple, float]:
        """Substrate-link bandwidth while active (empty when rejected)."""
        if not self.embedded:
            return {}
        usage: dict[tuple, float] = {}
        for lv, flows in self.link_flows.items():
            demand = self.request.vnet.link_demand(lv)
            for ls, fraction in flows.items():
                usage[ls] = usage.get(ls, 0.0) + demand * fraction
        return usage


class TemporalSolution:
    """A complete TVNEP solution across all requests.

    Parameters
    ----------
    substrate:
        The substrate the solution lives on.
    scheduled:
        Per-request :class:`ScheduledRequest` entries.
    objective:
        Objective value reported by the producing algorithm (NaN when
        not applicable).
    model_name:
        Which algorithm/formulation produced the solution.
    runtime, gap, node_count:
        Solver statistics carried along for the evaluation harness.
    status:
        Raw solve status (``"optimal"``, ``"feasible"``, ``"error"``,
        ...; empty for hand-built solutions).
    rung:
        Which fallback-chain rung produced the underlying MIP solution
        (see :mod:`repro.runtime.resilient`; empty for direct solves).
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        scheduled: Mapping[str, ScheduledRequest],
        objective: float = math.nan,
        model_name: str = "",
        runtime: float = 0.0,
        gap: float = 0.0,
        node_count: int = 0,
        status: str = "",
        rung: str = "",
    ) -> None:
        self.substrate = substrate
        self.scheduled = dict(scheduled)
        self.objective = objective
        self.model_name = model_name
        self.runtime = runtime
        self.gap = gap
        self.node_count = node_count
        self.status = status
        self.rung = rung

    # ------------------------------------------------------------------
    def __getitem__(self, request_name: str) -> ScheduledRequest:
        try:
            return self.scheduled[request_name]
        except KeyError:
            raise ValidationError(
                f"solution has no request {request_name!r}"
            ) from None

    def __contains__(self, request_name: str) -> bool:
        return request_name in self.scheduled

    def __len__(self) -> int:
        return len(self.scheduled)

    @property
    def requests(self) -> list[Request]:
        return [entry.request for entry in self.scheduled.values()]

    def embedded_names(self) -> list[str]:
        """Names of accepted requests."""
        return [name for name, s in self.scheduled.items() if s.embedded]

    def rejected_names(self) -> list[str]:
        return [name for name, s in self.scheduled.items() if not s.embedded]

    @property
    def num_embedded(self) -> int:
        return len(self.embedded_names())

    def acceptance_ratio(self) -> float:
        """Fraction of requests accepted."""
        if not self.scheduled:
            return 0.0
        return self.num_embedded / len(self.scheduled)

    def total_revenue(self) -> float:
        """Access-control revenue of the accepted set (Sec. IV-E.1)."""
        return sum(
            s.request.revenue() for s in self.scheduled.values() if s.embedded
        )

    def makespan(self) -> float:
        """Latest end time among accepted requests (0 when none)."""
        ends = [s.end for s in self.scheduled.values() if s.embedded]
        return max(ends, default=0.0)

    def summary(self) -> str:
        return (
            f"{self.model_name or 'solution'}: "
            f"{self.num_embedded}/{len(self.scheduled)} embedded, "
            f"objective={self.objective:.6g}, runtime={self.runtime:.3f}s, "
            f"gap={'inf' if math.isinf(self.gap) else f'{100 * self.gap:.2f}%'}"
        )

    def __repr__(self) -> str:
        return f"TemporalSolution({self.summary()})"
