"""The greedy admission algorithm cSigma^G_A (Sec. V).

The algorithm processes requests in order of earliest possible start.
For request ``L[i]`` it solves a cSigma model over all requests seen so
far in which

* node mappings are fixed a priori (Constraint 23),
* previously accepted requests are forced in (Constraint 24) with their
  windows pinned to the exact schedule chosen when they were accepted,
* previously rejected requests are forced out (Constraint 25) with
  their schedule pinned to the earliest slot (their times must still be
  fixed, per Definition 2.1), and
* the objective (21) ``max T * x_R(L[i]) + (T - t^-_{L[i]})`` embeds the
  new request if at all possible and then as early as possible.

Link allocations of accepted requests are *not* frozen — they are
re-optimized in every iteration (the paper stresses this), which is why
acceptance never degrades: a previously feasible flow assignment stays
feasible and better ones may appear.

Because all but one request have zero temporal flexibility in each
iteration, the dependency-graph event ranges collapse almost all event
assignments a priori, making each iteration's MIP tiny — the paper
reports ~0.1 s per iteration and argues polynomial solvability via
event-order enumeration + LPs.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ModelingError, SolverError
from repro.mip.model import ObjectiveSense
from repro.mip.solution import Solution
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.observability.metrics import get_registry
from repro.runtime.budget import SolveBudget
from repro.tvnep.base import ModelOptions
from repro.tvnep.csigma_model import CSigmaModel
from repro.tvnep.incremental import IncrementalCSigmaModel
from repro.tvnep.solution import ScheduledRequest, TemporalSolution
from repro.tvnep.warmstart import validated_warm_start
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["GreedyResult", "greedy_csigma", "greedy_enumerative"]

logger = logging.getLogger("repro.runtime")


def _pinned_schedule(
    current: Mapping[str, Request],
    accepted: Sequence[str],
    candidate: str | None = None,
) -> dict[str, tuple[bool, float, float]]:
    """The warm-start schedule implied by the iteration state.

    Every processed request sits at its pinned window; the candidate
    (if any) is proposed rejected at its earliest slot — exactly the
    feasible state the previous iteration established.
    """
    accepted_set = set(accepted)
    schedule: dict[str, tuple[bool, float, float]] = {}
    for name, request in current.items():
        if name == candidate:
            schedule[name] = (
                False,
                request.earliest_start,
                request.earliest_start + request.duration,
            )
        else:
            # pinned copies carry the chosen window as their only window
            schedule[name] = (
                name in accepted_set,
                request.earliest_start,
                request.latest_end,
            )
    return schedule


def _link_flow_values(raw: Solution) -> dict[str, float]:
    """Extract ``x_E`` values by name for reuse in the next iteration."""
    return {
        var.name: value
        for var, value in raw.values.items()
        if var.name.startswith("xE[")
    }


def solve_raw_warm(model, backend, time_limit, warm_start, **extra):
    """``solve_raw`` passing optional keywords only when the backend takes them.

    ``warm_start`` (and any ``extra`` keyword, e.g. the branch-and-bound
    ``lp_session`` spec) is an optimization hint, never a hard
    dependency on a backend's signature: a backend that rejects a
    keyword with :class:`TypeError` is retried with progressively fewer
    hints, down to a plain cold solve.
    """
    kwargs = dict(extra)
    if warm_start is not None:
        kwargs["warm_start"] = warm_start
    # drop hints one at a time: lp_session first (rarest), then
    # warm_start, then solve cold
    for attempt in (dict(kwargs), {"warm_start": warm_start} if warm_start is not None else {}, {}):
        try:
            return model.solve_raw(
                backend=backend, time_limit=time_limit, **attempt
            )
        except TypeError:
            if not attempt:
                raise
            logger.debug(
                "backend %r rejected keywords %s; retrying with fewer hints",
                backend,
                sorted(attempt),
            )
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class GreedyResult:
    """Outcome of the greedy run.

    Attributes
    ----------
    solution:
        The final temporal solution over all requests.
    iteration_runtimes:
        Per-iteration wall-clock seconds (the paper reports ~0.1 s).
    accepted_order:
        Request names in the order they were accepted.
    """

    solution: TemporalSolution
    iteration_runtimes: list[float] = field(default_factory=list)
    accepted_order: list[str] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return sum(self.iteration_runtimes)


def greedy_csigma(
    substrate: SubstrateNetwork,
    requests: Sequence[Request],
    fixed_mappings: Mapping[str, NodeMapping],
    options: ModelOptions | None = None,
    backend: str = "highs",
    time_limit_per_iteration: float | None = None,
    time_limit: float | None = None,
    budget: SolveBudget | None = None,
    lp_session: str | None = None,
    incremental: bool = True,
) -> GreedyResult:
    """Run Algorithm cSigma^G_A.

    Parameters
    ----------
    substrate, requests:
        The TVNEP instance.
    fixed_mappings:
        A-priori node mapping per request name (required — the
        algorithm only optimizes link embedding and scheduling; compute
        one with e.g. :func:`repro.vnep.random_node_mapping`).
    options:
        Formulation options for the per-iteration cSigma models
        (defaults to all reductions on — essential for speed).
    backend:
        MIP backend for the iterations (a registry name or callable,
        e.g. a :class:`~repro.runtime.resilient.ResilientBackend`).
    time_limit_per_iteration:
        Optional safety limit; an iteration that cannot prove
        embeddability in time conservatively rejects the request.
    time_limit:
        Global wall-clock limit for the *whole* run; it is divided
        fairly across the remaining iterations (deadline-aware), so the
        greedy degrades — rejecting the tail of the request list — but
        always terminates on schedule.
    budget:
        An existing :class:`~repro.runtime.budget.SolveBudget` to
        consume instead of creating one from ``time_limit`` (used when
        the caller threads one global budget through several phases).
    lp_session:
        Optional LP-engine spec (see :mod:`repro.mip.lp_engine`)
        forwarded to branch-and-bound backends.  The insertion loop
        re-solves near-identical cSigma models, so a persistent HiGHS
        session with basis hot-starts pays off here; backends without
        the keyword ignore it.
    incremental:
        Keep **one** growing
        :class:`~repro.tvnep.incremental.IncrementalCSigmaModel` for the
        whole run (default): each iteration appends the new request's
        embedding block and rebuilds only the temporal tail, instead of
        reconstructing every block from scratch.  The per-iteration
        models compile to byte-identical standard forms either way
        (``tests/tvnep/test_incremental_model.py``), so decisions and
        schedules never depend on this switch; ``False`` forces the
        historical fresh-model-per-iteration loop.
    """
    missing = [r.name for r in requests if r.name not in fixed_mappings]
    if missing:
        raise SolverError(
            f"greedy needs fixed node mappings for all requests; missing {missing}"
        )
    options = options or ModelOptions()
    if budget is None and time_limit is not None:
        budget = SolveBudget(time_limit)
    solve_hints = {} if lp_session is None else {"lp_session": lp_session}

    # L <- R ordered by earliest possible start (stable for ties)
    order = sorted(requests, key=lambda r: (r.earliest_start, r.name))

    horizon = max(r.latest_end for r in requests)
    current: dict[str, Request] = {}
    accepted: list[str] = []
    rejected: list[str] = []
    runtimes: list[float] = []
    # x_E values of the last successful solve, reused to warm-start the
    # next iteration (flows are time-invariant, so they stay feasible)
    flow_values: dict[str, float] = {}
    # one growing model for the whole run: embedding blocks append, the
    # temporal tail rebuilds per iteration, decisions are bound updates
    inc = (
        IncrementalCSigmaModel(
            substrate, options=_with_horizon(options, horizon), horizon=horizon
        )
        if incremental
        else None
    )

    def reject(request: Request) -> None:
        # fix times anyway (Definition 2.1); earliest slot
        current[request.name] = request.with_schedule(
            request.earliest_start,
            request.earliest_start + request.duration,
        )
        rejected.append(request.name)
        get_registry().inc("greedy.rejected")
        if inc is not None and inc.contains(request.name):
            inc.decide(request.name, False, current[request.name])

    for position, request in enumerate(order):
        current[request.name] = request
        get_registry().inc("greedy.iterations")
        if inc is not None:
            try:
                inc.insert(request, fixed_mappings[request.name])
            except (SolverError, ModelingError) as exc:
                # the embedding block itself cannot be built (e.g. an
                # invalid mapping target): reject without a model — the
                # fresh-model path fails the same way on this request
                logger.warning(
                    "greedy could not add %s to the incremental model "
                    "(%s); rejecting",
                    request.name,
                    exc,
                )
                runtimes.append(0.0)
                reject(request)
                continue
        if budget is not None and budget.expired:
            # out of wall-clock: conservatively reject the tail instead
            # of blowing past the deadline
            logger.warning(
                "greedy budget exhausted after %d/%d iterations; "
                "rejecting %s without solving",
                position,
                len(order),
                request.name,
            )
            runtimes.append(0.0)
            reject(request)
            continue
        # fair share of the remaining budget for this iteration (the
        # +1 reserves a slot for the final fully-pinned solve)
        iteration_limit = time_limit_per_iteration
        if budget is not None:
            share = budget.per_iteration(len(order) - position + 1, floor=0.05)
            iteration_limit = (
                share if iteration_limit is None else min(iteration_limit, share)
            )
        tick = time.perf_counter()
        try:
            if inc is not None:
                inc.rebuild_tail()
                model = inc
            else:
                model = CSigmaModel(
                    substrate,
                    list(current.values()),
                    fixed_mappings={
                        name: fixed_mappings[name] for name in current
                    },
                    force_embedded=accepted,
                    force_rejected=rejected,
                    options=_with_horizon(options, horizon),
                )
            # objective (21): embed L[i] if possible, then end it early
            target = model.embeddings[request.name]
            model.model.set_objective(
                target.x_embed * horizon
                + (horizon - model.t_end[request.name]),
                ObjectiveSense.MAXIMIZE,
            )
            # warm-start with the previous accepted state (candidate
            # proposed rejected) — the search then starts with a known
            # incumbent instead of cold
            warm = validated_warm_start(
                model,
                _pinned_schedule(current, accepted, candidate=request.name),
                flow_values,
            )
            raw = solve_raw_warm(
                model, backend, iteration_limit, warm, **solve_hints
            )
        except (SolverError, ModelingError) as exc:
            # a failed iteration conservatively rejects the request —
            # the run degrades instead of dying (Sec. V semantics: a
            # request that cannot be *proven* embeddable is rejected)
            logger.warning(
                "greedy iteration for %s failed (%s); rejecting", request.name, exc
            )
            runtimes.append(time.perf_counter() - tick)
            reject(request)
            continue
        runtimes.append(time.perf_counter() - tick)

        if raw.has_solution:
            flow_values = _link_flow_values(raw)
        embeddable = (
            raw.has_solution
            and raw.rounded(target.x_embed) == 1
        )
        if embeddable:
            start = raw.value(model.t_start[request.name])
            end = raw.value(model.t_end[request.name])
            # pin the window to the chosen schedule
            current[request.name] = request.with_schedule(start, end)
            accepted.append(request.name)
            get_registry().inc("greedy.accepted")
            if inc is not None:
                inc.decide(request.name, True, current[request.name])
        else:
            reject(request)

    # one final fully-pinned solve over *all* requests: with every
    # schedule and accept/reject decision fixed, this is cheap, and it
    # guarantees the extraction covers the whole request set even if a
    # per-iteration time limit left some intermediate solve empty —
    # routed through the same incremental model (one more tail rebuild)
    # whenever every request's embedding block made it in
    if inc is not None and all(inc.contains(name) for name in current):
        inc.rebuild_tail()
        final_model = inc
    else:
        final_model = CSigmaModel(
            substrate,
            list(current.values()),
            fixed_mappings=dict(fixed_mappings),
            force_embedded=accepted,
            force_rejected=rejected,
            options=_with_horizon(options, horizon),
        )
    # the final solve is fully pinned and therefore cheap; grant it a
    # small grace period even when the budget just ran out, because
    # without it there is nothing to extract
    final_limit = None
    if budget is not None:
        final_limit = max(budget.clamp(None), 1.0)
    try:
        final_warm = validated_warm_start(
            final_model, _pinned_schedule(current, accepted), flow_values
        )
        final_raw = solve_raw_warm(
            final_model, backend, final_limit, final_warm, **solve_hints
        )
    except SolverError as exc:
        raise SolverError(
            f"greedy final extraction solve failed: {exc}"
        ) from exc
    solution = final_model.extract(final_raw)
    solution.model_name = "csigma-greedy"
    solution.objective = solution.total_revenue()
    solution.runtime = sum(runtimes)
    solution.gap = 0.0
    final = _reconcile(solution, requests)
    return GreedyResult(
        solution=final,
        iteration_runtimes=runtimes,
        accepted_order=accepted,
    )


def greedy_enumerative(
    substrate: SubstrateNetwork,
    requests: Sequence[Request],
    fixed_mappings: Mapping[str, NodeMapping],
) -> GreedyResult:
    """The provably polynomial variant of Algorithm cSigma^G_A.

    Sec. V argues the greedy is polynomial because, with all previously
    processed requests pinned in time, only polynomially many event
    placements exist for the new request, each reducing to an LP.  This
    function implements that argument directly:

    * candidate starts for the new request are its earliest start plus
      the end times of already-accepted requests inside its window — a
      left-shift exchange argument shows the earliest feasible start is
      always among them;
    * each candidate is tested with the fixed-schedule link-embedding
      LP (:func:`repro.tvnep.fixed_schedule.solve_fixed_schedule`);
    * the first feasible candidate (earliest) is chosen, matching the
      MIP variant's objective (21).

    Produces the same acceptance decisions and schedules as
    :func:`greedy_csigma` (tested), with strictly polynomial work:
    O(|R|) LPs per request.
    """
    from repro.temporal.interval import Interval
    from repro.tvnep.fixed_schedule import FixedPlacement, solve_fixed_schedule

    missing = [r.name for r in requests if r.name not in fixed_mappings]
    if missing:
        raise SolverError(
            f"greedy needs fixed node mappings for all requests; missing {missing}"
        )
    order = sorted(requests, key=lambda r: (r.earliest_start, r.name))

    accepted: list[FixedPlacement] = []
    accepted_order: list[str] = []
    runtimes: list[float] = []
    scheduled: dict[str, ScheduledRequest] = {}
    latest_flows: dict[str, dict] = {}

    for request in order:
        tick = time.perf_counter()
        candidates = sorted(
            {request.earliest_start}
            | {
                placement.interval.hi
                for placement in accepted
                if request.earliest_start
                < placement.interval.hi
                <= request.latest_end - request.duration + 1e-12
            }
        )
        chosen: FixedPlacement | None = None
        for start in candidates:
            trial = FixedPlacement(
                request=request,
                node_mapping=fixed_mappings[request.name],
                interval=Interval(start, start + request.duration),
            )
            result = solve_fixed_schedule(substrate, accepted + [trial])
            if result.feasible:
                chosen = trial
                latest_flows = result.link_flows
                break
        runtimes.append(time.perf_counter() - tick)

        if chosen is not None:
            accepted.append(chosen)
            accepted_order.append(request.name)
            scheduled[request.name] = ScheduledRequest(
                request=request,
                embedded=True,
                start=chosen.interval.lo,
                end=chosen.interval.hi,
                node_mapping=dict(fixed_mappings[request.name]),
            )
        else:
            scheduled[request.name] = ScheduledRequest(
                request=request,
                embedded=False,
                start=request.earliest_start,
                end=request.earliest_start + request.duration,
            )

    # attach the final (jointly re-optimized) flows to the accepted set
    for name, entry in scheduled.items():
        if entry.embedded:
            entry.link_flows = latest_flows.get(name, {})

    solution = TemporalSolution(
        substrate,
        scheduled,
        objective=sum(
            e.request.revenue() for e in scheduled.values() if e.embedded
        ),
        model_name="enumerative-greedy",
        runtime=sum(runtimes),
        gap=0.0,
    )
    return GreedyResult(
        solution=solution,
        iteration_runtimes=runtimes,
        accepted_order=accepted_order,
    )


def _with_horizon(options: ModelOptions, horizon: float) -> ModelOptions:
    """Options with a shared time horizon across iterations."""
    if options.time_horizon is not None:
        return options
    from dataclasses import replace

    return replace(options, time_horizon=horizon)


def _reconcile(
    solution: TemporalSolution, original_requests: Sequence[Request]
) -> TemporalSolution:
    """Restore the original (un-pinned) request objects in the output.

    The greedy pins windows internally; the reported solution should
    reference the caller's requests so window checks use the *original*
    flexibilities.
    """
    by_name = {r.name: r for r in original_requests}
    scheduled = {}
    for name, entry in solution.scheduled.items():
        scheduled[name] = ScheduledRequest(
            request=by_name[name],
            embedded=entry.embedded,
            start=entry.start,
            end=entry.end,
            node_mapping=entry.node_mapping,
            link_flows=entry.link_flows,
        )
    return TemporalSolution(
        solution.substrate,
        scheduled,
        objective=solution.objective,
        model_name=solution.model_name,
        runtime=solution.runtime,
        gap=solution.gap,
        node_count=solution.node_count,
        status=solution.status,
        rung=solution.rung,
    )
