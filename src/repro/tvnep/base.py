"""Shared scaffolding of the continuous-time TVNEP formulations.

:class:`TemporalModelBase` implements everything the Delta-, Sigma- and
cSigma-Models have in common:

* per-request embedding variables and constraints (Sec. II, via
  :class:`~repro.vnep.embedding_vars.EmbeddingVariables`),
* the abstract event machinery: start/end event-mapping variables
  ``chi^+ / chi^-`` with their assignment constraints (Table VII for the
  full layout, Table XI for the compact one),
* temporal dependency-graph event ranges (Constraint 19) — realized by
  *not creating* variables outside a point's admissible event range,
* pairwise precedence cuts (Constraint 20) and start-before-end
  ordering cuts,
* the time coupling of Table XIII (event times, request start/end
  times, duration and window constraints), and
* solution extraction into :class:`~repro.tvnep.solution.TemporalSolution`.

Subclasses contribute only the *state feasibility* machinery (the big-M
state changes of the Delta-Model, or the explicit state allocations of
the Sigma-/cSigma-Models) by overriding :meth:`_build_states`.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import ModelingError, ValidationError
from repro.mip.constraint import Sense
from repro.mip.expr import LinExpr, Variable, quicksum
from repro.mip.model import Model, ObjectiveSense
from repro.mip.solution import Solution
from repro.observability.metrics import get_registry
from repro.observability.trace import current_trace
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.temporal.dependency import (
    DepNode,
    PointKind,
    TemporalDependencyGraph,
)
from repro.temporal.events import EventSpace
from repro.tvnep.solution import ScheduledRequest, TemporalSolution
from repro.vnep.embedding_vars import EmbeddingVariables, NodeMapping

__all__ = ["ModelOptions", "TemporalModelBase", "ActivityStatus"]


@dataclass(frozen=True)
class ModelOptions:
    """Formulation switches (all strengthening features default on).

    Attributes
    ----------
    use_dependency_cuts:
        Event-range restriction from the temporal dependency graph
        (Constraint 19).  Implemented by only creating event-mapping
        variables inside a point's admissible range.
    use_pairwise_cuts:
        Precedence cuts between dependent points (Constraint 20).
    use_ordering_cuts:
        ``end-assignment prefix <= start-assignment prefix`` per request
        — valid in every integral solution, strengthens relaxations.
    use_state_reduction:
        Sigma-/cSigma-Models only: skip state-allocation variables for
        (request, state) pairs whose activity is decided a priori by the
        event ranges, folding definite allocations straight into the
        capacity constraints (the presolve routine of Sec. IV-C).
    include_intra_request_edges:
        Add ``start -> end`` dependency edges within each request (see
        :class:`~repro.temporal.dependency.TemporalDependencyGraph`).
    time_horizon:
        ``T``; defaults to the maximum ``t^e`` over all requests.
    formulation:
        ``"columnar"`` (default) emits the hot constraint families
        through the batched :class:`~repro.mip.columnar.ColumnarEmitter`
        fast path; ``"legacy"`` builds every row through the
        ``LinExpr`` dict algebra.  Both compile to byte-identical
        standard forms (``tests/tvnep/test_columnar_formulation.py``),
        so the legacy path remains the readable executable
        specification.
    """

    use_dependency_cuts: bool = True
    use_pairwise_cuts: bool = True
    use_ordering_cuts: bool = True
    use_state_reduction: bool = True
    include_intra_request_edges: bool = True
    time_horizon: float | None = None
    formulation: str = "columnar"

    @classmethod
    def plain(cls) -> "ModelOptions":
        """All strengthening features off — the paper's baseline models."""
        return cls(
            use_dependency_cuts=False,
            use_pairwise_cuts=False,
            use_ordering_cuts=False,
            use_state_reduction=False,
            include_intra_request_edges=False,
        )


class ActivityStatus:
    """A-priori activity of a request at a state: one of the constants."""

    ACTIVE = "active"
    INACTIVE = "inactive"
    UNDECIDED = "undecided"


class TemporalModelBase:
    """Common machinery of all continuous-time TVNEP formulations.

    Parameters
    ----------
    substrate, requests:
        The problem instance.
    fixed_mappings:
        Optional per-request fixed node mappings
        (``{request name: {virtual node: substrate node}}``) — the
        evaluation methodology of Sec. VI-A.
    force_embedded / force_rejected:
        Request names whose ``x_R`` is pinned (greedy Constraints 24/25
        and the fixed-set objectives).
    options:
        Formulation switches; subclass constructors choose suitable
        defaults.
    """

    #: ``"compact"`` (|R|+1 events) or ``"full"`` (2|R| events)
    layout: str = "full"
    #: human-readable formulation name
    formulation_name: str = "base"
    #: whether requests get the static (time-invariant) ``x_E`` flows;
    #: the re-routing variant builds per-state flows instead
    build_static_link_flows: bool = True

    def __init__(
        self,
        substrate: SubstrateNetwork,
        requests: Sequence[Request],
        fixed_mappings: Mapping[str, NodeMapping] | None = None,
        force_embedded: Sequence[str] = (),
        force_rejected: Sequence[str] = (),
        options: ModelOptions | None = None,
    ) -> None:
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ValidationError("request names must be unique")
        if not requests:
            raise ValidationError("TVNEP needs at least one request")
        unknown = (set(force_embedded) | set(force_rejected)) - set(names)
        if unknown:
            raise ValidationError(f"forced requests not in instance: {unknown}")

        self.substrate = substrate
        self.requests = list(requests)
        self.options = options or ModelOptions()
        if self.options.formulation not in ("columnar", "legacy"):
            raise ValidationError(
                f"unknown formulation {self.options.formulation!r} "
                "(expected 'columnar' or 'legacy')"
            )
        self._columnar = self.options.formulation == "columnar"
        self.model = Model(self.formulation_name)

        horizon = self.options.time_horizon
        if horizon is None:
            horizon = max(r.latest_end for r in requests)
        if horizon < max(r.latest_end for r in requests) - 1e-9:
            raise ValidationError(
                "time horizon smaller than the latest request end"
            )
        self.T = float(horizon)

        self._fixed_mappings = dict(fixed_mappings or {})
        self._force_embedded = set(force_embedded)
        self._force_rejected = set(force_rejected)

        with get_registry().timer("model.build"):
            self._build_embeddings()
            self._build_temporal()
            # default objective
            self.set_access_control_objective()
        self._emit_build_event()

    def _build_embeddings(self) -> None:
        """Per-request embedding variables and constraints (Sec. II)."""
        self.embeddings: dict[str, EmbeddingVariables] = {}
        for request in self.requests:
            self._build_one_embedding(request)

    def _build_one_embedding(self, request: Request) -> None:
        self.embeddings[request.name] = EmbeddingVariables(
            self.model,
            self.substrate,
            request,
            fixed_mapping=self._fixed_mappings.get(request.name),
            force_embedded=request.name in self._force_embedded,
            force_rejected=request.name in self._force_rejected,
            build_link_flows=self.build_static_link_flows,
            columnar=self._columnar,
        )

    def _build_temporal(self) -> None:
        """Everything downstream of the request set's event structure.

        Kept separate from :meth:`_build_embeddings` because the event
        space, dependency graph and state machinery are global functions
        of the request set — the incremental greedy model rebuilds only
        this part per insertion while the per-request embedding blocks
        persist.
        """
        self.events = EventSpace(
            len(self.requests), compact=self.layout == "compact"
        )
        self.dep_graph = TemporalDependencyGraph(
            self.requests,
            include_intra_request_edges=self.options.include_intra_request_edges,
        )

        # -- event machinery ----------------------------------------------
        self._event_ranges = self._compute_event_ranges()
        self._build_event_variables()
        self._build_event_assignment_constraints()
        if self.options.use_ordering_cuts:
            self._build_ordering_cuts()
        if self.options.use_pairwise_cuts:
            self._build_pairwise_cuts()

        # -- time coupling --------------------------------------------------
        self._build_time_variables()
        self._build_time_coupling()

        # -- state feasibility (subclass specific) ---------------------------
        self._activity = self._compute_activity_table()
        self._build_states()

    def _emit_build_event(self, incremental: bool = False) -> None:
        """Emit the deterministic ``model_build`` trace event."""
        trace = current_trace()
        if trace is None:
            return
        trace.emit(
            "model_build",
            model=self.formulation_name,
            formulation=self.options.formulation,
            num_vars=self.model.num_vars,
            num_constraints=self.model.num_constraints,
            columnar_nnz=self.model.columnar_nnz,
            incremental=incremental,
        )

    # ==================================================================
    # event ranges (Constraint 19)
    # ==================================================================
    def _compute_event_ranges(self) -> dict[tuple[str, PointKind], range]:
        """Admissible event range per (request, start/end) point."""
        ranges: dict[tuple[str, PointKind], range] = {}
        compact = self.layout == "compact"
        base_start = self.events.start_events
        base_end = self.events.end_events
        for request in self.requests:
            for kind, base in ((PointKind.START, base_start), (PointKind.END, base_end)):
                lo, hi = base.start, base.stop - 1
                if self.options.use_dependency_cuts:
                    node = self.dep_graph.node(request.name, kind)
                    if compact:
                        lead = self.dep_graph.leading_exclusion(node)
                        trail = self.dep_graph.trailing_exclusion(node)
                        lo = max(lo, lead + 1)
                        hi = min(hi, self.events.num_events - trail)
                    else:
                        lead = self.dep_graph.leading_exclusion_full(node)
                        trail = self.dep_graph.trailing_exclusion_full(node)
                        lo = max(lo, lead + 1)
                        hi = min(hi, self.events.num_events - trail)
                if lo > hi:
                    raise ModelingError(
                        f"{request.name}.{kind.value}: empty event range "
                        f"[{lo}, {hi}] — dependency cuts prove infeasibility"
                    )
                ranges[(request.name, kind)] = range(lo, hi + 1)
        return ranges

    def event_range(self, request_name: str, kind: PointKind) -> range:
        """Admissible events for a request's start or end point."""
        return self._event_ranges[(request_name, kind)]

    # ==================================================================
    # event variables and assignment constraints
    # ==================================================================
    def _build_event_variables(self) -> None:
        #: ``chi^+[(request, event)]`` / ``chi^-[(request, event)]``
        self.chi_start: dict[tuple[str, int], Variable] = {}
        self.chi_end: dict[tuple[str, int], Variable] = {}
        # each request's chi variables are created contiguously over its
        # admissible range, so a prefix/suffix sum is a column *slice*;
        # the columnar emitters exploit this via the base indices below
        self._chi_start_base: dict[str, int] = {}
        self._chi_end_base: dict[str, int] = {}
        for request in self.requests:
            name = request.name
            for i in self.event_range(name, PointKind.START):
                var = self.model.binary_var(f"chi+[{name}][e{i}]")
                self.chi_start[(name, i)] = var
                self._chi_start_base.setdefault(name, var.index)
            for i in self.event_range(name, PointKind.END):
                var = self.model.binary_var(f"chi-[{name}][e{i}]")
                self.chi_end[(name, i)] = var
                self._chi_end_base.setdefault(name, var.index)

    # -- columnar prefix/suffix column helpers -------------------------
    def _prefix_cols(self, name: str, kind: PointKind, event_index: int) -> range:
        """Column indices of ``sum_{j <= i} chi`` over the admissible range."""
        r = self.event_range(name, kind)
        base = (
            self._chi_start_base[name]
            if kind is PointKind.START
            else self._chi_end_base[name]
        )
        count = min(event_index, r.stop - 1) - r.start + 1
        return range(base, base + max(count, 0))

    def _suffix_cols(self, name: str, kind: PointKind, event_index: int) -> range:
        """Column indices of ``sum_{j >= i} chi`` over the admissible range."""
        r = self.event_range(name, kind)
        base = (
            self._chi_start_base[name]
            if kind is PointKind.START
            else self._chi_end_base[name]
        )
        lo = max(event_index, r.start)
        return range(base + (lo - r.start), base + len(r))

    def _build_event_assignment_constraints(self) -> None:
        if self._columnar:
            self._build_event_assignment_constraints_columnar()
            return
        # each point maps to exactly one admissible event
        for request in self.requests:
            name = request.name
            self.model.add_constr(
                quicksum(
                    self.chi_start[(name, i)]
                    for i in self.event_range(name, PointKind.START)
                )
                == 1,
                name=f"assign+[{name}]",
            )
            self.model.add_constr(
                quicksum(
                    self.chi_end[(name, i)]
                    for i in self.event_range(name, PointKind.END)
                )
                == 1,
                name=f"assign-[{name}]",
            )
        # event-capacity side
        if self.layout == "compact":
            # Table XI (12): each of e_1..e_|R| hosts exactly one start
            for i in self.events.start_events:
                hosted = quicksum(
                    self.chi_start[(r.name, i)]
                    for r in self.requests
                    if (r.name, i) in self.chi_start
                )
                self.model.add_constr(hosted == 1, name=f"event+[e{i}]")
        else:
            # full layout: starts and ends jointly bijective onto events
            for i in self.events.events:
                hosted = LinExpr()
                for r in self.requests:
                    var = self.chi_start.get((r.name, i))
                    if var is not None:
                        hosted.add_term(var, 1.0)
                    var = self.chi_end.get((r.name, i))
                    if var is not None:
                        hosted.add_term(var, 1.0)
                self.model.add_constr(hosted == 1, name=f"event[e{i}]")

    def _build_event_assignment_constraints_columnar(self) -> None:
        em = self.model.columnar_emitter()
        for request in self.requests:
            name = request.name
            srange = self.event_range(name, PointKind.START)
            row = em.add_row(f"assign+[{name}]", Sense.EQ, 1.0)
            base = self._chi_start_base[name]
            em.add_row_terms(row, range(base, base + len(srange)), [1.0] * len(srange))
            erange = self.event_range(name, PointKind.END)
            row = em.add_row(f"assign-[{name}]", Sense.EQ, 1.0)
            base = self._chi_end_base[name]
            em.add_row_terms(row, range(base, base + len(erange)), [1.0] * len(erange))
        if self.layout == "compact":
            for i in self.events.start_events:
                row = em.add_row(f"event+[e{i}]", Sense.EQ, 1.0)
                cols = [
                    var.index
                    for r in self.requests
                    if (var := self.chi_start.get((r.name, i))) is not None
                ]
                em.add_row_terms(row, cols, [1.0] * len(cols))
        else:
            for i in self.events.events:
                row = em.add_row(f"event[e{i}]", Sense.EQ, 1.0)
                cols = []
                for r in self.requests:
                    var = self.chi_start.get((r.name, i))
                    if var is not None:
                        cols.append(var.index)
                    var = self.chi_end.get((r.name, i))
                    if var is not None:
                        cols.append(var.index)
                em.add_row_terms(row, cols, [1.0] * len(cols))
        em.flush()

    # -- prefix helpers ---------------------------------------------------
    def start_prefix(self, request_name: str, event_index: int) -> LinExpr:
        """``sum_{j <= i} chi^+(e_j)`` over the admissible range."""
        expr = LinExpr()
        for i in self.event_range(request_name, PointKind.START):
            if i <= event_index:
                expr.add_term(self.chi_start[(request_name, i)], 1.0)
        return expr

    def end_prefix(self, request_name: str, event_index: int) -> LinExpr:
        """``sum_{j <= i} chi^-(e_j)`` over the admissible range."""
        expr = LinExpr()
        for i in self.event_range(request_name, PointKind.END):
            if i <= event_index:
                expr.add_term(self.chi_end[(request_name, i)], 1.0)
        return expr

    def start_suffix(self, request_name: str, event_index: int) -> LinExpr:
        """``sum_{j >= i} chi^+(e_j)`` over the admissible range."""
        expr = LinExpr()
        for i in self.event_range(request_name, PointKind.START):
            if i >= event_index:
                expr.add_term(self.chi_start[(request_name, i)], 1.0)
        return expr

    def end_suffix(self, request_name: str, event_index: int) -> LinExpr:
        """``sum_{j >= i} chi^-(e_j)`` over the admissible range."""
        expr = LinExpr()
        for i in self.event_range(request_name, PointKind.END):
            if i >= event_index:
                expr.add_term(self.chi_end[(request_name, i)], 1.0)
        return expr

    def activity_expr(self, request_name: str, state_index: int) -> LinExpr:
        """``Sigma(R, s_i)`` — 1 iff started by ``e_i`` and not yet ended."""
        return self.start_prefix(request_name, state_index) - self.end_prefix(
            request_name, state_index
        )

    # ==================================================================
    # cuts
    # ==================================================================
    def _build_ordering_cuts(self) -> None:
        """Start-before-end prefix cuts (valid for every integral solution)."""
        if self._columnar:
            em = self.model.columnar_emitter()
            for request in self.requests:
                name = request.name
                for i in self.event_range(name, PointKind.END):
                    end_cols = self._prefix_cols(name, PointKind.END, i)
                    if not end_cols:
                        continue
                    row = em.add_row(f"order[{name}][e{i}]", Sense.LE, 0.0)
                    em.add_row_terms(row, end_cols, [1.0] * len(end_cols))
                    start_cols = self._prefix_cols(name, PointKind.START, i - 1)
                    em.add_row_terms(row, start_cols, [-1.0] * len(start_cols))
            em.flush()
            return
        for request in self.requests:
            name = request.name
            for i in self.event_range(name, PointKind.END):
                lhs = self.end_prefix(name, i)
                rhs = self.start_prefix(name, i - 1)
                if not lhs.terms:
                    continue
                self.model.add_constr(lhs <= rhs, name=f"order[{name}][e{i}]")

    def _build_pairwise_cuts(self) -> None:
        """Constraint (20): precedence distances between dependent points."""
        em = self.model.columnar_emitter() if self._columnar else None
        for v in self.dep_graph.nodes:
            for w in self.dep_graph.nodes:
                if v is w or not self.dep_graph.reaches(v, w):
                    continue
                d = self.dep_graph.dist_max(v, w)
                if d <= 0:
                    continue
                w_range = self.event_range(w.request, w.kind)
                v_range = self.event_range(v.request, v.kind)
                for i in w_range:
                    # vacuous when w cannot yet be assigned, or trivially
                    # satisfied when v is certainly assigned by i - d
                    if i - d >= v_range.stop - 1:
                        continue
                    if em is not None:
                        w_cols = self._prefix_cols(w.request, w.kind, i)
                        if not w_cols:
                            continue
                        row = em.add_row(f"prec[{v}][{w}][e{i}]", Sense.LE, 0.0)
                        em.add_row_terms(row, w_cols, [1.0] * len(w_cols))
                        v_cols = self._prefix_cols(v.request, v.kind, i - d)
                        em.add_row_terms(row, v_cols, [-1.0] * len(v_cols))
                        continue
                    lhs = self._point_prefix(w, i)
                    rhs = self._point_prefix(v, i - d)
                    if not lhs.terms:
                        continue
                    self.model.add_constr(
                        lhs <= rhs, name=f"prec[{v}][{w}][e{i}]"
                    )
        if em is not None:
            em.flush()

    def _point_prefix(self, node: DepNode, event_index: int) -> LinExpr:
        if node.is_start:
            return self.start_prefix(node.request, event_index)
        return self.end_prefix(node.request, event_index)

    # ==================================================================
    # time coupling (Table XIII)
    # ==================================================================
    def _build_time_variables(self) -> None:
        self.t_event: dict[int, Variable] = {
            i: self.model.continuous_var(f"t[e{i}]", lb=0.0, ub=self.T)
            for i in self.events.events
        }
        self.t_start: dict[str, Variable] = {}
        self.t_end: dict[str, Variable] = {}
        for request in self.requests:
            name = request.name
            # guard against float cancellation at zero flexibility:
            # t^e - d may land an ulp below t^s (and t^s + d above t^e)
            start_ub = max(request.earliest_start, request.latest_end - request.duration)
            end_lb = min(request.latest_end, request.earliest_start + request.duration)
            self.t_start[name] = self.model.continuous_var(
                f"t+[{name}]",
                lb=request.earliest_start,
                ub=start_ub,
            )
            self.t_end[name] = self.model.continuous_var(
                f"t-[{name}]",
                lb=end_lb,
                ub=request.latest_end,
            )
            # Constraint (18): embedded exactly for the duration
            self.model.add_constr(
                self.t_end[name] - self.t_start[name] == request.duration,
                name=f"duration[{name}]",
            )

    def _build_time_coupling(self) -> None:
        if self._columnar:
            self._build_time_coupling_columnar()
            return
        # Constraint (13): weakly monotone event times
        for i in self.events.events:
            if i + 1 in self.t_event:
                self.model.add_constr(
                    self.t_event[i] <= self.t_event[i + 1], name=f"mono[e{i}]"
                )
        T = self.T
        for request in self.requests:
            name = request.name
            start_range = self.event_range(name, PointKind.START)
            # (14)/(15): t+ pinned to its event's time
            for i in start_range:
                prefix = self.start_prefix(name, i)
                self.model.add_constr(
                    self.t_start[name]
                    <= self.t_event[i] + (1 - prefix) * T,
                    name=f"t+ub[{name}][e{i}]",
                )
                suffix = self.start_suffix(name, i)
                self.model.add_constr(
                    self.t_start[name]
                    >= self.t_event[i] - (1 - suffix) * T,
                    name=f"t+lb[{name}][e{i}]",
                )
            end_range = self.event_range(name, PointKind.END)
            if self.layout == "compact":
                # (16)/(17): end lies within [t_{e_{i-1}}, t_{e_i}]
                for i in end_range:
                    prefix = self.end_prefix(name, i)
                    self.model.add_constr(
                        self.t_end[name]
                        <= self.t_event[i] + (1 - prefix) * T,
                        name=f"t-ub[{name}][e{i}]",
                    )
                    suffix = self.end_suffix(name, i)
                    self.model.add_constr(
                        self.t_end[name]
                        >= self.t_event[i - 1] - (1 - suffix) * T,
                        name=f"t-lb[{name}][e{i}]",
                    )
            else:
                # full layout: ends are exact event points
                for i in end_range:
                    prefix = self.end_prefix(name, i)
                    self.model.add_constr(
                        self.t_end[name]
                        <= self.t_event[i] + (1 - prefix) * T,
                        name=f"t-ub[{name}][e{i}]",
                    )
                    suffix = self.end_suffix(name, i)
                    self.model.add_constr(
                        self.t_end[name]
                        >= self.t_event[i] - (1 - suffix) * T,
                        name=f"t-lb[{name}][e{i}]",
                    )

    def _build_time_coupling_columnar(self) -> None:
        """Columnar emission of Table XIII; rows mirror the legacy path.

        ``t <= t_event + (1 - prefix) * T`` normalizes to
        ``t - t_event + T * prefix <= T`` and its ``>=`` twin to
        ``t - t_event - T * suffix >= -T`` — the exact rows the dict
        algebra produces via :meth:`Constraint.from_sides`.
        """
        em = self.model.columnar_emitter()
        for i in self.events.events:
            if i + 1 in self.t_event:
                row = em.add_row(f"mono[e{i}]", Sense.LE, 0.0)
                em.add_row_terms(
                    row,
                    [self.t_event[i].index, self.t_event[i + 1].index],
                    [1.0, -1.0],
                )
        T = self.T
        for request in self.requests:
            name = request.name
            t_start = self.t_start[name].index
            t_end = self.t_end[name].index
            for i in self.event_range(name, PointKind.START):
                cols = self._prefix_cols(name, PointKind.START, i)
                row = em.add_row(f"t+ub[{name}][e{i}]", Sense.LE, T)
                em.add_row_terms(row, [t_start, self.t_event[i].index], [1.0, -1.0])
                em.add_row_terms(row, cols, [T] * len(cols))
                cols = self._suffix_cols(name, PointKind.START, i)
                row = em.add_row(f"t+lb[{name}][e{i}]", Sense.GE, -T)
                em.add_row_terms(row, [t_start, self.t_event[i].index], [1.0, -1.0])
                em.add_row_terms(row, cols, [-T] * len(cols))
            compact = self.layout == "compact"
            for i in self.event_range(name, PointKind.END):
                cols = self._prefix_cols(name, PointKind.END, i)
                row = em.add_row(f"t-ub[{name}][e{i}]", Sense.LE, T)
                em.add_row_terms(row, [t_end, self.t_event[i].index], [1.0, -1.0])
                em.add_row_terms(row, cols, [T] * len(cols))
                cols = self._suffix_cols(name, PointKind.END, i)
                anchor = self.t_event[i - 1 if compact else i].index
                row = em.add_row(f"t-lb[{name}][e{i}]", Sense.GE, -T)
                em.add_row_terms(row, [t_end, anchor], [1.0, -1.0])
                em.add_row_terms(row, cols, [-T] * len(cols))
        em.flush()

    # ==================================================================
    # activity table (presolve of Sec. IV-C)
    # ==================================================================
    def _compute_activity_table(self) -> dict[tuple[str, int], str]:
        """A-priori activity status of each request at each state."""
        table: dict[tuple[str, int], str] = {}
        for request in self.requests:
            name = request.name
            start_range = self.event_range(name, PointKind.START)
            end_range = self.event_range(name, PointKind.END)
            start_hi = start_range.stop - 1
            start_lo = start_range.start
            end_hi = end_range.stop - 1
            end_lo = end_range.start
            for state in self.events.states:
                if not self.options.use_state_reduction:
                    table[(name, state)] = ActivityStatus.UNDECIDED
                    continue
                surely_started = start_hi <= state
                surely_not_started = start_lo > state
                surely_ended = end_hi <= state
                surely_not_ended = end_lo > state
                if surely_started and surely_not_ended:
                    table[(name, state)] = ActivityStatus.ACTIVE
                elif surely_not_started or surely_ended:
                    table[(name, state)] = ActivityStatus.INACTIVE
                else:
                    table[(name, state)] = ActivityStatus.UNDECIDED
        return table

    def activity_status(self, request_name: str, state_index: int) -> str:
        """A-priori activity of a request at a state."""
        return self._activity[(request_name, state_index)]

    # ==================================================================
    # subclass hook
    # ==================================================================
    def _build_states(self) -> None:
        """Build the state-feasibility machinery (subclass specific)."""
        raise NotImplementedError

    # ==================================================================
    # objectives (Sec. IV-E) — defined in repro.tvnep.objectives; thin
    # default here so a freshly built model is always solvable.
    # ==================================================================
    def set_access_control_objective(self) -> None:
        """Maximize ``sum_R x_R * d_R * sum_v c_R(v)`` (Sec. IV-E.1)."""
        self.model.set_objective(
            quicksum(
                emb.x_embed * emb.request.revenue()
                for emb in self.embeddings.values()
            ),
            ObjectiveSense.MAXIMIZE,
        )

    # ==================================================================
    # solving and extraction
    # ==================================================================
    def solve(self, backend: str = "highs", **kwargs) -> TemporalSolution:
        """Solve and extract a :class:`TemporalSolution`.

        Solver statistics (runtime, gap, node count) are carried on the
        returned solution for the evaluation harness.
        """
        from repro.mip import solve

        solution = solve(self.model, backend=backend, **kwargs)
        return self.extract(solution)

    def solve_raw(self, backend: str = "highs", **kwargs) -> Solution:
        """Solve and return the raw MIP solution (no extraction)."""
        from repro.mip import solve

        return solve(self.model, backend=backend, **kwargs)

    def extract(self, solution: Solution) -> TemporalSolution:
        """Convert a raw MIP solution into a :class:`TemporalSolution`."""
        scheduled: dict[str, ScheduledRequest] = {}
        if not solution.has_solution:
            # carry an empty all-rejected solution with the solver stats
            for request in self.requests:
                scheduled[request.name] = ScheduledRequest(
                    request=request,
                    embedded=False,
                    start=request.earliest_start,
                    end=request.earliest_start + request.duration,
                )
            return TemporalSolution(
                self.substrate,
                scheduled,
                objective=math.nan,
                model_name=self.formulation_name,
                runtime=solution.runtime,
                gap=solution.gap,
                node_count=solution.node_count,
                status=solution.status.value,
                rung=solution.rung,
            )

        for request in self.requests:
            name = request.name
            emb = self.embeddings[name]
            embedded = solution.rounded(emb.x_embed) == 1
            start = solution.value(self.t_start[name])
            end = solution.value(self.t_end[name])
            node_mapping: dict[Hashable, Hashable] = {}
            link_flows: dict[tuple, dict[tuple, float]] = {}
            if embedded:
                for (v, s), var in emb.x_node.items():
                    if solution.rounded(var) == 1:
                        node_mapping[v] = s
                for (lv, ls), var in emb.x_link.items():
                    value = solution.value(var)
                    if value > 1e-7:
                        link_flows.setdefault(lv, {})[ls] = min(value, 1.0)
            scheduled[name] = ScheduledRequest(
                request=request,
                embedded=embedded,
                start=start,
                end=end,
                node_mapping=node_mapping,
                link_flows=link_flows,
            )
        return TemporalSolution(
            self.substrate,
            scheduled,
            objective=solution.objective,
            model_name=self.formulation_name,
            runtime=solution.runtime,
            gap=solution.gap,
            node_count=solution.node_count,
            status=solution.status.value,
            rung=solution.rung,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Model-size statistics (reported by the evaluation harness)."""
        return self.model.stats()
