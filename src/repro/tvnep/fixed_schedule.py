"""Link embedding for a *fixed* schedule and node mapping.

When every request's start/end time and node mapping are fixed, the
TVNEP loses all its integer structure: the only remaining freedom is
the splittable routing of virtual links, which is a pure LP —

* flow-conservation rows per (request, virtual link, substrate node),
* one capacity row per (critical interval, substrate resource), where
  the critical intervals come from sweeping the fixed activity
  intervals (Sec. III-A's event-point insight applied directly).

This LP is the engine of the polynomial greedy variant
(:func:`repro.tvnep.greedy.greedy_enumerative`), and doubles as a
standalone "can these tenants coexist?" feasibility oracle.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.mip.expr import LinExpr, quicksum
from repro.mip.highs_backend import solve as solve_highs
from repro.mip.model import Model, ObjectiveSense
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.temporal.interval import Interval

__all__ = ["FixedPlacement", "FixedScheduleResult", "solve_fixed_schedule"]


@dataclass(frozen=True)
class FixedPlacement:
    """One request pinned in space and time."""

    request: Request
    node_mapping: Mapping[Hashable, Hashable]
    interval: Interval

    def node_usage(self) -> dict[Hashable, float]:
        usage: dict[Hashable, float] = {}
        for v, host in self.node_mapping.items():
            usage[host] = usage.get(host, 0.0) + self.request.vnet.node_demand(v)
        return usage


@dataclass
class FixedScheduleResult:
    """Outcome of the fixed-schedule link-embedding LP."""

    feasible: bool
    #: ``{request name: {virtual link: {substrate link: fraction}}}``
    link_flows: dict[str, dict[tuple, dict[tuple, float]]]
    #: reason when infeasible ("" otherwise)
    reason: str = ""
    runtime: float = 0.0


def _critical_groups(
    placements: list[FixedPlacement],
) -> list[list[int]]:
    """Indices of simultaneously active placements per critical interval.

    Activity intervals are open, so groups are formed at the midpoints
    between consecutive critical times.
    """
    points = sorted(
        {p.interval.lo for p in placements} | {p.interval.hi for p in placements}
    )
    groups: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    for lo, hi in zip(points, points[1:]):
        mid = 0.5 * (lo + hi)
        active = [
            i
            for i, p in enumerate(placements)
            if p.interval.lo < mid < p.interval.hi
        ]
        key = tuple(active)
        if active and key not in seen:
            seen.add(key)
            groups.append(active)
    return groups


def solve_fixed_schedule(
    substrate: SubstrateNetwork,
    placements: list[FixedPlacement],
) -> FixedScheduleResult:
    """Decide whether the pinned placements can coexist; return flows.

    Node feasibility is pure arithmetic (mappings are constants); link
    feasibility solves one LP.  Placements with a degenerate interval
    contribute nothing (they never hold resources).
    """
    for placement in placements:
        missing = [
            v
            for v in placement.request.vnet.nodes
            if v not in placement.node_mapping
        ]
        if missing:
            raise ValidationError(
                f"{placement.request.name}: mapping misses {missing}"
            )

    active_placements = [p for p in placements if not p.interval.is_degenerate]
    groups = _critical_groups(active_placements)

    # -- node capacities: constants only ---------------------------------
    for group in groups:
        usage: dict[Hashable, float] = {}
        for index in group:
            for host, amount in active_placements[index].node_usage().items():
                usage[host] = usage.get(host, 0.0) + amount
        for host, amount in usage.items():
            if amount > substrate.node_capacity(host) + 1e-9:
                members = ", ".join(
                    active_placements[i].request.name for i in group
                )
                return FixedScheduleResult(
                    feasible=False,
                    link_flows={},
                    reason=(
                        f"node {host!r} over capacity "
                        f"({amount:.3f} > {substrate.node_capacity(host):g}) "
                        f"while {{{members}}} are active"
                    ),
                )

    # -- link flows: one LP ----------------------------------------------
    model = Model("fixed-schedule")
    flow_vars: dict[tuple[int, tuple, tuple], object] = {}
    for index, placement in enumerate(active_placements):
        vnet = placement.request.vnet
        for lv in vnet.links:
            for ls in substrate.links:
                flow_vars[(index, lv, ls)] = model.continuous_var(
                    f"f[{index}][{lv}@{ls}]", lb=0.0, ub=1.0
                )
        for lv in vnet.links:
            tail, head = lv
            src = placement.node_mapping[tail]
            dst = placement.node_mapping[head]
            for s in substrate.nodes:
                outflow = quicksum(
                    flow_vars[(index, lv, ls)] for ls in substrate.out_links(s)
                )
                inflow = quicksum(
                    flow_vars[(index, lv, ls)] for ls in substrate.in_links(s)
                )
                balance = 0.0
                if src != dst:
                    if s == src:
                        balance = 1.0
                    elif s == dst:
                        balance = -1.0
                model.add_constr(
                    outflow - inflow == balance,
                    name=f"flow[{index}][{lv}][{s}]",
                )

    for group in groups:
        for ls in substrate.links:
            usage = LinExpr()
            for index in group:
                vnet = active_placements[index].request.vnet
                for lv in vnet.links:
                    usage.add_term(
                        flow_vars[(index, lv, ls)], vnet.link_demand(lv)
                    )
            if usage.terms:
                model.add_constr(
                    usage <= substrate.link_capacity(ls),
                    name=f"cap[{ls}]",
                )

    # minimizing total flow keeps routings cycle-free and canonical
    model.set_objective(
        quicksum(var for var in flow_vars.values()), ObjectiveSense.MINIMIZE
    )
    solution = solve_highs(model)
    if not solution.has_solution:
        return FixedScheduleResult(
            feasible=False,
            link_flows={},
            reason="link-embedding LP infeasible",
            runtime=solution.runtime,
        )

    flows: dict[str, dict[tuple, dict[tuple, float]]] = {}
    for (index, lv, ls), var in flow_vars.items():
        value = solution.value(var)
        if value > 1e-7:
            name = active_placements[index].request.name
            flows.setdefault(name, {}).setdefault(lv, {})[ls] = min(value, 1.0)
    # placements with no active links still appear with empty flows
    for placement in active_placements:
        flows.setdefault(placement.request.name, {})
    return FixedScheduleResult(
        feasible=True, link_flows=flows, runtime=solution.runtime
    )
