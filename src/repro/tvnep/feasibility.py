"""Independent feasibility verification of TVNEP solutions.

This module re-checks a :class:`~repro.tvnep.solution.TemporalSolution`
against Definition 2.1 *without* any MIP machinery:

1. every accepted request has a complete node mapping and its link
   flows form valid unit flows from tail host to head host,
2. the schedule respects duration and window (``t^- - t^+ = d``,
   ``t^s <= t^+``, ``t^- <= t^e``), and
3. at every point in time the summed allocations respect node and link
   capacities — checked via an event sweep over the (open) activity
   intervals, which is exact because allocations are piecewise constant.

The verifier is the correctness oracle of the test suite: every model
and heuristic solution must pass it.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.network.substrate import SubstrateNetwork
from repro.temporal.events import Timeline
from repro.temporal.interval import Interval
from repro.tvnep.solution import ScheduledRequest, TemporalSolution

__all__ = ["verify_solution", "check_unit_flow", "FeasibilityReport"]


class FeasibilityReport:
    """Collected violations; empty means the solution is feasible."""

    def __init__(self) -> None:
        self.violations: list[str] = []

    def add(self, message: str) -> None:
        self.violations.append(message)

    @property
    def feasible(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.feasible

    def __repr__(self) -> str:
        if self.feasible:
            return "FeasibilityReport(feasible)"
        joined = "; ".join(self.violations[:5])
        more = f" (+{len(self.violations) - 5} more)" if len(self.violations) > 5 else ""
        return f"FeasibilityReport({joined}{more})"


def check_unit_flow(
    substrate: SubstrateNetwork,
    scheduled: ScheduledRequest,
    virtual_link: tuple,
    tol: float = 1e-5,
) -> list[str]:
    """Check that a virtual link's flows form a unit tail->head flow.

    Verifies flow conservation at every substrate node: net outflow must
    be ``+1`` at the tail's host, ``-1`` at the head's host, 0 elsewhere
    (and 0 everywhere when both endpoints share a host).
    """
    problems: list[str] = []
    tail, head = virtual_link
    name = scheduled.name
    src = scheduled.node_mapping.get(tail)
    dst = scheduled.node_mapping.get(head)
    if src is None or dst is None:
        return [f"{name}: link {virtual_link} endpoints not mapped"]
    flows = scheduled.link_flows.get(virtual_link, {})
    for ls, fraction in flows.items():
        if not substrate.has_link(ls):
            problems.append(f"{name}: flow on unknown substrate link {ls}")
        if fraction < -tol or fraction > 1 + tol:
            problems.append(
                f"{name}: flow fraction {fraction} on {ls} outside [0, 1]"
            )
    for s in substrate.nodes:
        outflow = sum(flows.get(ls, 0.0) for ls in substrate.out_links(s))
        inflow = sum(flows.get(ls, 0.0) for ls in substrate.in_links(s))
        expected = 0.0
        if src != dst:
            if s == src:
                expected = 1.0
            elif s == dst:
                expected = -1.0
        if abs(outflow - inflow - expected) > tol:
            problems.append(
                f"{name}: flow conservation violated for {virtual_link} at "
                f"{s}: net outflow {outflow - inflow:.6f}, expected {expected}"
            )
    return problems


def _snap_times(solution: TemporalSolution, snap: float) -> dict[float, float]:
    """Cluster nearly-equal schedule times to one representative.

    MIP solutions satisfy ``t^-_A == t^+_B`` only up to solver
    tolerance; without snapping, a 1e-14 sliver of overlap between a
    back-to-back pair would read as a full capacity violation in the
    exact sweep.  Times within ``snap`` of each other are merged to
    their cluster mean.
    """
    times = sorted(
        {entry.start for entry in solution.scheduled.values() if entry.embedded}
        | {entry.end for entry in solution.scheduled.values() if entry.embedded}
    )
    mapping: dict[float, float] = {}
    cluster: list[float] = []
    for t in times:
        if cluster and t - cluster[-1] > snap:
            representative = sum(cluster) / len(cluster)
            for member in cluster:
                mapping[member] = representative
            cluster = []
        cluster.append(t)
    if cluster:
        representative = sum(cluster) / len(cluster)
        for member in cluster:
            mapping[member] = representative
    return mapping


def verify_solution(
    solution: TemporalSolution,
    tol: float = 1e-5,
    check_windows: bool = True,
    time_snap: float = 1e-6,
    check_flows: bool = True,
) -> FeasibilityReport:
    """Full Definition-2.1 check of a temporal solution.

    Parameters
    ----------
    solution:
        The solution to verify.
    tol:
        Numerical tolerance for capacities, flows and times.
    check_windows:
        Also validate schedule windows for *rejected* requests (their
        times must be fixed per Definition 2.1 but some producers leave
        them at defaults; disable to skip).
    time_snap:
        Times closer than this are treated as simultaneous during the
        capacity sweep (see :func:`_snap_times`); schedule checks use
        the raw values.
    check_flows:
        Validate per-virtual-link unit flows and count their bandwidth
        toward link capacities.  The re-routing extension disables this
        and checks its per-state flows itself
        (:meth:`repro.tvnep.rerouting.ReroutingSchedule.verify`).
    """
    report = FeasibilityReport()
    substrate = solution.substrate
    timeline = Timeline()
    snapped = _snap_times(solution, time_snap)

    for name, entry in solution.scheduled.items():
        request = entry.request
        # -- schedule checks -------------------------------------------
        duration_err = abs((entry.end - entry.start) - request.duration)
        relevant = entry.embedded or check_windows
        if relevant:
            if duration_err > tol:
                report.add(
                    f"{name}: scheduled duration {entry.end - entry.start:.6f}"
                    f" != d_R {request.duration:.6f}"
                )
            if entry.start < request.earliest_start - tol:
                report.add(
                    f"{name}: starts at {entry.start:.6f} before "
                    f"t^s {request.earliest_start:.6f}"
                )
            if entry.end > request.latest_end + tol:
                report.add(
                    f"{name}: ends at {entry.end:.6f} after "
                    f"t^e {request.latest_end:.6f}"
                )
        if not entry.embedded:
            continue

        # -- mapping checks --------------------------------------------
        for v in request.vnet.nodes:
            host = entry.node_mapping.get(v)
            if host is None:
                report.add(f"{name}: virtual node {v!r} not mapped")
            elif not substrate.has_node(host):
                report.add(f"{name}: {v!r} mapped to unknown node {host!r}")
        if check_flows:
            for lv in request.vnet.links:
                report.violations.extend(
                    check_unit_flow(substrate, entry, lv, tol=tol)
                )

        # -- accumulate allocations ------------------------------------
        lo = snapped.get(entry.start, entry.start)
        hi = snapped.get(entry.end, entry.end)
        if hi < lo:  # degenerate after snapping (duration ~ snap)
            hi = lo
        activity = Interval(lo, hi)
        timeline.add_usages(entry.node_usage(), activity)
        if check_flows:
            timeline.add_usages(entry.link_usage(), activity)

    # -- capacity checks ----------------------------------------------
    capacities: dict[Hashable, float] = {
        s: substrate.node_capacity(s) for s in substrate.nodes
    }
    capacities.update({ls: substrate.link_capacity(ls) for ls in substrate.links})
    for resource, excess in timeline.violations(capacities, tol=tol).items():
        report.add(
            f"capacity exceeded on {resource!r} by {excess:.6f} "
            f"(cap {capacities[resource]:g})"
        )
    return report
