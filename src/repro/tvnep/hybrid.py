"""The heavy-hitters hybrid the paper's conclusion sketches.

    "[the greedy] could also be used in combination with the optimal
    algorithms, e.g., for allocating many smaller VNets while more
    rigorous optimizations are performed on the resource-intensive
    VNets (the 'heavy-hitters')."  — Sec. VIII

:func:`hybrid_heavy_hitters` implements exactly that division of
labor:

1. split the request set by revenue (``d_R * sum_v c_R(v)``): the top
   ``heavy_fraction`` are *heavy-hitters*, the rest are *small*;
2. solve the heavy-hitters **exactly** with the cSigma-Model (access
   control), obtaining their accept/reject decisions and schedules;
3. insert the small requests **greedily** (earliest-start order, each
   as one cSigma solve with everything placed so far pinned — the
   same per-iteration machinery as Algorithm cSigma^G_A).

The result is always feasible, dominates pure greedy whenever the
heavy-hitters carry most of the revenue (they get the optimal
treatment), and costs one moderately sized exact solve plus cheap
greedy iterations instead of one big exact solve.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ModelingError, SolverError, ValidationError
from repro.mip.model import ObjectiveSense
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.observability.metrics import get_registry
from repro.runtime.budget import SolveBudget
from repro.tvnep.base import ModelOptions
from repro.tvnep.csigma_model import CSigmaModel
from repro.tvnep.greedy import _link_flow_values, _pinned_schedule, solve_raw_warm
from repro.tvnep.incremental import IncrementalCSigmaModel
from repro.tvnep.solution import ScheduledRequest, TemporalSolution
from repro.tvnep.warmstart import validated_warm_start
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["HybridResult", "hybrid_heavy_hitters"]

logger = logging.getLogger("repro.runtime")


@dataclass
class HybridResult:
    """Outcome of the heavy-hitters hybrid.

    Attributes
    ----------
    solution:
        Final temporal solution over all requests.
    heavy_names / small_names:
        The revenue split used.
    exact_runtime:
        Seconds spent on the heavy-hitters' exact solve.
    greedy_runtimes:
        Per-insertion seconds for the small requests.
    """

    solution: TemporalSolution
    heavy_names: list[str] = field(default_factory=list)
    small_names: list[str] = field(default_factory=list)
    exact_runtime: float = 0.0
    greedy_runtimes: list[float] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return self.exact_runtime + sum(self.greedy_runtimes)


def hybrid_heavy_hitters(
    substrate: SubstrateNetwork,
    requests: Sequence[Request],
    fixed_mappings: Mapping[str, NodeMapping],
    heavy_fraction: float = 0.3,
    options: ModelOptions | None = None,
    backend: str = "highs",
    exact_time_limit: float | None = None,
    time_limit_per_iteration: float | None = None,
    time_limit: float | None = None,
    budget: SolveBudget | None = None,
    lp_session: str | None = None,
    incremental: bool = True,
) -> HybridResult:
    """Exact on the heavy-hitters, greedy on the rest (Sec. VIII).

    Parameters
    ----------
    heavy_fraction:
        Fraction of requests (by count, after sorting by revenue
        descending) treated exactly; clamped to at least one request
        when the set is non-empty.
    exact_time_limit / time_limit_per_iteration:
        Budgets for the exact phase and each greedy insertion.
    time_limit / budget:
        One global wall-clock budget for the whole run (a
        :class:`~repro.runtime.budget.SolveBudget`, or seconds to build
        one from): the exact phase receives half the remaining time and
        the greedy insertions divide the rest fairly, so the hybrid
        always terminates on schedule.
    lp_session:
        Optional LP-engine spec (see :mod:`repro.mip.lp_engine`)
        forwarded to branch-and-bound backends; the insertion loop
        re-solves near-identical cSigma models, the best case for a
        persistent session.  Backends without the keyword ignore it.
    incremental:
        Run the insertion phase on one growing
        :class:`~repro.tvnep.incremental.IncrementalCSigmaModel`
        (default) — seeded with the heavy-hitters' pinned outcomes,
        then extended per small request — instead of rebuilding a fresh
        cSigma model per insertion.  Decisions are identical either way
        (the per-insertion standard forms are byte-equal).
    """
    if not 0.0 <= heavy_fraction <= 1.0:
        raise ValidationError("heavy_fraction must lie in [0, 1]")
    missing = [r.name for r in requests if r.name not in fixed_mappings]
    if missing:
        raise SolverError(
            f"hybrid needs fixed node mappings for all requests; missing {missing}"
        )
    options = options or ModelOptions()
    if budget is None and time_limit is not None:
        budget = SolveBudget(time_limit)
    horizon = max(r.latest_end for r in requests)
    options = _with_horizon(options, horizon)
    solve_hints = {} if lp_session is None else {"lp_session": lp_session}

    by_revenue = sorted(requests, key=lambda r: (-r.revenue(), r.name))
    num_heavy = max(1, round(heavy_fraction * len(by_revenue))) if by_revenue else 0
    heavy = by_revenue[:num_heavy]
    small = sorted(
        by_revenue[num_heavy:], key=lambda r: (r.earliest_start, r.name)
    )
    heavy_names = [r.name for r in heavy]
    small_names = [r.name for r in small]

    # -- phase 1: exact on the heavy-hitters ------------------------------
    # the exact phase gets half the remaining global budget; the greedy
    # insertions divide the rest
    if budget is not None:
        half = budget.remaining() * 0.5
        exact_time_limit = (
            half if exact_time_limit is None else min(exact_time_limit, half)
        )
    tick = time.perf_counter()
    exact_model = CSigmaModel(
        substrate,
        heavy,
        fixed_mappings={name: fixed_mappings[name] for name in heavy_names},
        options=options,
    )
    exact_raw = exact_model.solve_raw(backend=backend, time_limit=exact_time_limit)
    exact_solution = exact_model.extract(exact_raw)
    exact_runtime = time.perf_counter() - tick
    # x_E values of the exact phase seed the insertion warm starts
    flow_values = _link_flow_values(exact_raw) if exact_raw.has_solution else {}

    # pin the heavy-hitters' outcomes
    current: dict[str, Request] = {}
    accepted: list[str] = []
    rejected: list[str] = []
    for request in heavy:
        entry = exact_solution.scheduled.get(request.name)
        if entry is not None and entry.embedded:
            current[request.name] = request.with_schedule(entry.start, entry.end)
            accepted.append(request.name)
        else:
            current[request.name] = request.with_schedule(
                request.earliest_start,
                request.earliest_start + request.duration,
            )
            rejected.append(request.name)

    # -- phase 2: greedy insertion of the small requests -------------------
    # one growing model seeded with the heavy-hitters' pinned outcomes;
    # each small request appends its embedding block and rebuilds only
    # the temporal tail
    inc: IncrementalCSigmaModel | None = None
    if incremental:
        inc = IncrementalCSigmaModel(substrate, options=options, horizon=horizon)
        try:
            for request in heavy:
                inc.insert(request, fixed_mappings[request.name])
                inc.decide(
                    request.name,
                    request.name in accepted,
                    current[request.name],
                )
        except (SolverError, ModelingError) as exc:  # pragma: no cover
            # a heavy embedding that built in the exact phase should
            # always build here; degrade to the fresh-model loop if not
            logger.warning(
                "hybrid could not seed the incremental model (%s); "
                "falling back to per-insertion models",
                exc,
            )
            inc = None

    greedy_runtimes: list[float] = []
    for position, request in enumerate(small):
        current[request.name] = request
        get_registry().inc("hybrid.insertions")

        def _reject() -> None:
            current[request.name] = request.with_schedule(
                request.earliest_start,
                request.earliest_start + request.duration,
            )
            rejected.append(request.name)
            get_registry().inc("hybrid.rejected")
            if inc is not None and inc.contains(request.name):
                inc.decide(request.name, False, current[request.name])

        if inc is not None:
            try:
                inc.insert(request, fixed_mappings[request.name])
            except (SolverError, ModelingError) as exc:
                logger.warning(
                    "hybrid could not add %s to the incremental model "
                    "(%s); rejecting",
                    request.name,
                    exc,
                )
                greedy_runtimes.append(0.0)
                _reject()
                continue

        if budget is not None and budget.expired:
            logger.warning(
                "hybrid budget exhausted after %d/%d insertions; "
                "rejecting %s without solving",
                position,
                len(small),
                request.name,
            )
            greedy_runtimes.append(0.0)
            _reject()
            continue
        iteration_limit = time_limit_per_iteration
        if budget is not None:
            share = budget.per_iteration(len(small) - position + 1, floor=0.05)
            iteration_limit = (
                share if iteration_limit is None else min(iteration_limit, share)
            )
        tick = time.perf_counter()
        try:
            if inc is not None:
                inc.rebuild_tail()
                model = inc
            else:
                model = CSigmaModel(
                    substrate,
                    list(current.values()),
                    fixed_mappings={
                        name: fixed_mappings[name] for name in current
                    },
                    force_embedded=accepted,
                    force_rejected=rejected,
                    options=options,
                )
            target = model.embeddings[request.name]
            model.model.set_objective(
                target.x_embed * horizon + (horizon - model.t_end[request.name]),
                ObjectiveSense.MAXIMIZE,
            )
            warm = validated_warm_start(
                model,
                _pinned_schedule(current, accepted, candidate=request.name),
                flow_values,
            )
            raw = solve_raw_warm(
                model, backend, iteration_limit, warm, **solve_hints
            )
        except (SolverError, ModelingError) as exc:
            logger.warning(
                "hybrid insertion for %s failed (%s); rejecting", request.name, exc
            )
            greedy_runtimes.append(time.perf_counter() - tick)
            _reject()
            continue
        greedy_runtimes.append(time.perf_counter() - tick)
        if raw.has_solution:
            flow_values = _link_flow_values(raw)
        if raw.has_solution and raw.rounded(target.x_embed) == 1:
            start = raw.value(model.t_start[request.name])
            end = raw.value(model.t_end[request.name])
            current[request.name] = request.with_schedule(start, end)
            accepted.append(request.name)
            get_registry().inc("hybrid.accepted")
            if inc is not None:
                inc.decide(request.name, True, current[request.name])
        else:
            _reject()

    # -- assemble the final solution ---------------------------------------
    # a fully-pinned solve over the whole request set (cheap: every
    # decision is fixed) so the extraction always covers all requests;
    # reuses the incremental model (one more tail rebuild) when possible
    if inc is not None and all(inc.contains(name) for name in current):
        inc.rebuild_tail()
        final_model = inc
    else:
        final_model = CSigmaModel(
            substrate,
            list(current.values()),
            fixed_mappings={name: fixed_mappings[name] for name in current},
            force_embedded=accepted,
            force_rejected=rejected,
            options=options,
        )
    # fully pinned and cheap; granted a grace second past the deadline
    final_limit = max(budget.clamp(None), 1.0) if budget is not None else None
    final_warm = validated_warm_start(
        final_model, _pinned_schedule(current, accepted), flow_values
    )
    solution = final_model.extract(
        solve_raw_warm(final_model, backend, final_limit, final_warm, **solve_hints)
    )

    solution = _restore_requests(solution, requests)
    solution.model_name = "hybrid-heavy-hitters"
    solution.objective = solution.total_revenue()
    solution.runtime = exact_runtime + sum(greedy_runtimes)
    solution.gap = 0.0
    return HybridResult(
        solution=solution,
        heavy_names=heavy_names,
        small_names=small_names,
        exact_runtime=exact_runtime,
        greedy_runtimes=greedy_runtimes,
    )


def _with_horizon(options: ModelOptions, horizon: float) -> ModelOptions:
    if options.time_horizon is not None:
        return options
    from dataclasses import replace

    return replace(options, time_horizon=horizon)


def _restore_requests(
    solution: TemporalSolution, originals: Sequence[Request]
) -> TemporalSolution:
    """Swap the pinned request copies back for the caller's originals."""
    by_name = {r.name: r for r in originals}
    scheduled = {
        name: ScheduledRequest(
            request=by_name[name],
            embedded=entry.embedded,
            start=entry.start,
            end=entry.end,
            node_mapping=entry.node_mapping,
            link_flows=entry.link_flows,
        )
        for name, entry in solution.scheduled.items()
    }
    return TemporalSolution(
        solution.substrate,
        scheduled,
        objective=solution.objective,
        model_name=solution.model_name,
        runtime=solution.runtime,
        gap=solution.gap,
        node_count=solution.node_count,
        status=solution.status,
        rung=solution.rung,
    )
