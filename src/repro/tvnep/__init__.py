"""The Temporal VNet Embedding Problem: models, cuts, greedy, verifier.

Public entry points:

* :class:`DeltaModel`, :class:`SigmaModel`, :class:`CSigmaModel` — the
  paper's three continuous-time MIP formulations (Secs. III-IV).
* :class:`ModelOptions` — formulation switches (cuts, reductions).
* :mod:`repro.tvnep.objectives` — the four objective functions of
  Sec. IV-E plus a makespan extension.
* :func:`greedy_csigma` — Algorithm cSigma^G_A (Sec. V).
* :func:`verify_solution` — the independent Definition-2.1 checker.
"""

from repro.tvnep.base import ActivityStatus, ModelOptions, TemporalModelBase
from repro.tvnep.csigma_model import CSigmaModel
from repro.tvnep.delta_model import DeltaModel
from repro.tvnep.feasibility import (
    FeasibilityReport,
    check_unit_flow,
    verify_solution,
)
from repro.tvnep.discrete_model import DiscreteTimeModel
from repro.tvnep.fixed_schedule import (
    FixedPlacement,
    FixedScheduleResult,
    solve_fixed_schedule,
)
from repro.tvnep.greedy import GreedyResult, greedy_csigma, greedy_enumerative
from repro.tvnep.hybrid import HybridResult, hybrid_heavy_hitters
from repro.tvnep.rerouting import ReroutingCSigmaModel, ReroutingSchedule
from repro.tvnep.objectives import (
    OBJECTIVES,
    set_access_control,
    set_balance_node_load,
    set_disable_links,
    set_max_earliness,
    set_min_makespan,
)
from repro.tvnep.sigma_model import SigmaModel
from repro.tvnep.solution import ScheduledRequest, TemporalSolution

__all__ = [
    "TemporalModelBase",
    "ModelOptions",
    "ActivityStatus",
    "DeltaModel",
    "SigmaModel",
    "CSigmaModel",
    "TemporalSolution",
    "ScheduledRequest",
    "greedy_csigma",
    "greedy_enumerative",
    "GreedyResult",
    "HybridResult",
    "hybrid_heavy_hitters",
    "DiscreteTimeModel",
    "FixedPlacement",
    "FixedScheduleResult",
    "solve_fixed_schedule",
    "ReroutingCSigmaModel",
    "ReroutingSchedule",
    "verify_solution",
    "check_unit_flow",
    "FeasibilityReport",
    "OBJECTIVES",
    "set_access_control",
    "set_max_earliness",
    "set_balance_node_load",
    "set_disable_links",
    "set_min_makespan",
]
