"""One growing cSigma model across greedy insertions (Sec. V, fast path).

The greedy algorithm cSigma^G_A solves a cSigma model per insertion in
which only the newest request is undecided — yet the historical loop
rebuilt the *entire* model from scratch every iteration, re-emitting the
per-request embedding blocks of all previously processed requests
(O(|R|^2) embedding constructions over a run).

:class:`IncrementalCSigmaModel` keeps **one** :class:`~repro.mip.model.Model`
alive for the whole run and exploits the structure of the iteration
sequence:

* the per-request *embedding* blocks (placement/flow variables,
  Constraints (1)-(2)) depend only on the virtual network, the substrate
  and the fixed node mapping — never on the time windows — so they are
  **append-only**: each insertion adds exactly one new block and all
  previous blocks survive verbatim (their compiled CSR rows are reused
  through the model's :class:`~repro.mip.model._CompiledPrefix`);
* accept/reject decisions and window pins are **bound-only** updates
  (``x_R`` fixed via :meth:`~repro.mip.model.Model.set_var_bounds`),
  which never touch the constraint matrix;
* only the *temporal* tail (events, cuts, time coupling, states) is a
  global function of the request set — event counts and dependency
  ranges shift with every insertion — so it is rolled back with
  :meth:`~repro.mip.model.Model.truncate` and rebuilt per iteration.

Byte parity with the historical loop is load-bearing: the model this
class exposes at each iteration compiles to the *same*
:class:`~repro.mip.model.StandardForm` as a fresh
:class:`~repro.tvnep.csigma_model.CSigmaModel` over the same pinned
request list (``tests/tvnep/test_incremental_model.py``), so the greedy
makes identical accept/reject decisions with either construction path.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.exceptions import ValidationError
from repro.mip.model import Model
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.observability.metrics import get_registry
from repro.tvnep.base import ModelOptions
from repro.tvnep.csigma_model import CSigmaModel
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["IncrementalCSigmaModel"]


class IncrementalCSigmaModel(CSigmaModel):
    """A cSigma model grown one request at a time.

    Use as::

        inc = IncrementalCSigmaModel(substrate, options=opts, horizon=T)
        for request in order:
            inc.insert(request, mappings[request.name])
            inc.rebuild_tail()          # temporal layer over current set
            ... solve, read decision ...
            inc.decide(request.name, embedded, pinned_request)
        inc.rebuild_tail()              # final fully-pinned model

    After :meth:`rebuild_tail` the instance *is* a regular
    :class:`~repro.tvnep.csigma_model.CSigmaModel` — solve/extract/
    warm-start machinery is inherited unchanged.

    Parameters
    ----------
    substrate:
        The substrate network (shared by every iteration).
    options:
        Formulation options; ``time_horizon`` must be set (the greedy
        shares one horizon across iterations, so the growing model can
        too).
    horizon:
        The shared horizon ``T`` (must match ``options.time_horizon``
        when that is set).
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        options: ModelOptions | None = None,
        horizon: float | None = None,
    ) -> None:
        # deliberately does NOT call CSigmaModel.__init__: the base
        # constructor builds a full model over a fixed request list,
        # while this class starts empty and grows
        self.substrate = substrate
        self.requests: list[Request] = []
        self.options = options or ModelOptions()
        if self.options.formulation not in ("columnar", "legacy"):
            raise ValidationError(
                f"unknown formulation {self.options.formulation!r} "
                "(expected 'columnar' or 'legacy')"
            )
        self._columnar = self.options.formulation == "columnar"
        self.model = Model(self.formulation_name)
        if horizon is None:
            horizon = self.options.time_horizon
        if horizon is None:
            raise ValidationError(
                "IncrementalCSigmaModel needs an explicit time horizon "
                "(there are no requests yet to infer one from)"
            )
        self.T = float(horizon)

        self._fixed_mappings: dict[str, dict[Hashable, Hashable]] = {}
        self._force_embedded: set[str] = set()
        self._force_rejected: set[str] = set()
        self.embeddings = {}
        self._index_of: dict[str, int] = {}
        #: checkpoint separating the persistent embedding prefix from
        #: the disposable temporal tail
        self._embedding_mark = self.model.mark()
        self._tail_built = False

    # ------------------------------------------------------------------
    def insert(self, request: Request, mapping: NodeMapping | None) -> None:
        """Append ``request``'s embedding block (drops the temporal tail).

        The new request enters *undecided* (``x_R`` free); call
        :meth:`rebuild_tail` to get a solvable model and
        :meth:`decide` once the iteration's outcome is known.
        """
        if request.name in self._index_of:
            raise ValidationError(f"request {request.name!r} already inserted")
        if request.latest_end > self.T + 1e-9:
            raise ValidationError(
                "time horizon smaller than the latest request end"
            )
        self._drop_tail()
        checkpoint = self.model.mark()
        self.requests.append(request)
        self._index_of[request.name] = len(self.requests) - 1
        if mapping is not None:
            self._fixed_mappings[request.name] = dict(mapping)
        with get_registry().timer("model.build"):
            try:
                self._build_one_embedding(request)
            except Exception:
                # leave the model exactly as before the failed insert;
                # the caller typically rejects the request without it
                self.model.truncate(checkpoint)
                self.requests.pop()
                del self._index_of[request.name]
                self._fixed_mappings.pop(request.name, None)
                self.embeddings.pop(request.name, None)
                raise
        self._embedding_mark = self.model.mark()

    def decide(self, name: str, embedded: bool, pinned: Request) -> None:
        """Pin a processed request's outcome (bound-only, matrix untouched).

        ``pinned`` is the zero-flexibility copy carrying the chosen (or
        earliest-slot, for rejections) window; it replaces the original
        in :attr:`requests` so the next :meth:`rebuild_tail` computes
        event ranges from the pinned windows — exactly what a fresh
        per-iteration model sees.
        """
        index = self._index_of[name]
        self.requests[index] = pinned
        emb = self.embeddings[name]
        emb.request = pinned
        if embedded:
            self._force_embedded.add(name)
            self.model.set_var_bounds(emb.x_embed, 1.0, 1.0)
        else:
            self._force_rejected.add(name)
            self.model.set_var_bounds(emb.x_embed, 0.0, 0.0)

    def rebuild_tail(self) -> None:
        """(Re)build the temporal layer over the current request set.

        Raises
        ------
        ModelingError
            When the dependency cuts prove the current set infeasible
            (empty event range) — the same error a fresh model's
            constructor raises.  The model is left in the clean
            embeddings-only state, so the caller can :meth:`decide` a
            rejection and continue.
        """
        if not self.requests:
            raise ValidationError("TVNEP needs at least one request")
        self._drop_tail()
        with get_registry().timer("model.build"):
            try:
                self._build_temporal()
            except Exception:
                self.model.truncate(self._embedding_mark)
                raise
            self.set_access_control_objective()
            self._tail_built = True
        self._emit_build_event(incremental=True)

    def contains(self, name: str) -> bool:
        """Whether a request's embedding block made it into the model."""
        return name in self._index_of

    # ------------------------------------------------------------------
    def _drop_tail(self) -> None:
        if self._tail_built:
            self.model.truncate(self._embedding_mark)
            self._tail_built = False
