"""Building MIP warm starts from concrete schedules.

The greedy algorithm cSigma^G_A and the heavy-hitters hybrid re-solve a
nearly identical explicit-state model per inserted request: everything
placed so far is pinned, only the new request is free.  The previous
iteration's outcome — accepted requests at their pinned windows, the
candidate rejected — is therefore a feasible point of the *new* model,
and :func:`schedule_warm_start` reconstructs the full variable
assignment for it: embedding indicators, link flows (carried over from
the previous solve — flows are time-invariant, so they stay feasible),
the chi event assignment implied by sorting the schedule, event times,
and the explicit state allocations.

The event spaces of consecutive iterations differ (one more request ⇒
one more event), so naively mapping variables by name across models is
*invalid*; rebuilding the assignment from the schedule is the only
sound construction.  Edge cases the construction cannot honor (an
implied event outside a point's dependency-cut range, ties that break
a precedence cut) make it return ``None`` — and whatever it returns is
still validated against the compiled form before use (see
:mod:`repro.mip.warm_start`), so a warm start can only ever save time,
never change a result.
"""

from __future__ import annotations

import logging
from collections.abc import Mapping

from repro.mip.expr import Variable
from repro.temporal.dependency import PointKind

__all__ = ["schedule_warm_start", "validated_warm_start"]

logger = logging.getLogger("repro.runtime")

#: name -> (embedded, start, end)
Schedule = Mapping[str, tuple[bool, float, float]]

_EPS = 1e-9


def schedule_warm_start(
    model,
    schedule: Schedule,
    flow_values: Mapping[str, float] | None = None,
) -> dict[Variable, float] | None:
    """Assignment of ``model`` realizing ``schedule``, or ``None``.

    Parameters
    ----------
    model:
        A built explicit-state temporal model (Sigma/cSigma family —
        anything exposing ``state_alloc``).  Requests must carry fixed
        node mappings; free-placement models are not supported (the
        schedule does not determine node placement).
    schedule:
        ``request name -> (embedded, start, end)`` covering every
        request of the model.  Rejected requests still need (pinned)
        times, per Definition 2.1.
    flow_values:
        ``variable name -> value`` for the ``x_E`` link-flow variables,
        taken from a previous solution (names are stable across
        models).  Missing flows default to 0 — correct whenever the
        virtual link's endpoints share a substrate node, and caught by
        validation otherwise.
    """
    if not hasattr(model, "state_alloc"):
        return None
    flow_values = flow_values or {}
    requests = model.requests
    if any(r.name not in schedule for r in requests):
        return None

    values: dict[Variable, float] = {}

    # -- embedding indicators and link flows --------------------------------
    for request in requests:
        emb = model.embeddings[request.name]
        embedded = bool(schedule[request.name][0])
        if embedded and emb.fixed_mapping is None:
            return None  # placement not determined by the schedule
        values[emb.x_embed] = 1.0 if embedded else 0.0
        for (v, s), var in emb.x_node.items():
            values[var] = (
                1.0 if embedded and emb.fixed_mapping[v] == s else 0.0
            )
        for var in emb.x_link.values():
            values[var] = (
                float(flow_values.get(var.name, 0.0)) if embedded else 0.0
            )

    # -- event assignment implied by the schedule ---------------------------
    num_events = model.events.num_events
    start_event: dict[str, int] = {}
    end_event: dict[str, int] = {}
    event_time: dict[int, float] = {}
    if model.layout == "compact":
        # starts are bijective on e_1..e_|R| in time order; an end maps
        # to the earliest event at or after it (ends live in the
        # half-open bucket (t_{e_{i-1}}, t_{e_i}]), which claims the
        # fewest active states
        order = sorted(requests, key=lambda r: (schedule[r.name][1], r.name))
        for position, request in enumerate(order, start=1):
            start_event[request.name] = position
            event_time[position] = schedule[request.name][1]
        event_time[num_events] = model.T
        for request in requests:
            end = schedule[request.name][2]
            i = start_event[request.name] + 1
            while i <= num_events and event_time[i] < end - _EPS:
                i += 1
            if i > num_events:
                return None
            end_event[request.name] = i
    else:
        # full layout: starts and ends jointly bijective onto events;
        # ends sort before starts at equal times so back-to-back
        # schedules (open-interval semantics) never claim a shared
        # active state
        points = sorted(
            [
                (schedule[r.name][2], 0, r.name, PointKind.END)
                for r in requests
            ]
            + [
                (schedule[r.name][1], 1, r.name, PointKind.START)
                for r in requests
            ]
        )
        for position, (at, _, name, kind) in enumerate(points, start=1):
            event_time[position] = at
            if kind is PointKind.START:
                start_event[name] = position
            else:
                end_event[name] = position
        if any(
            end_event[r.name] <= start_event[r.name] for r in requests
        ):
            return None  # zero-duration tie inverted the point order

    for request in requests:
        name = request.name
        if start_event[name] not in model.event_range(name, PointKind.START):
            return None
        if end_event[name] not in model.event_range(name, PointKind.END):
            return None
    for (name, i), var in model.chi_start.items():
        values[var] = 1.0 if start_event[name] == i else 0.0
    for (name, i), var in model.chi_end.items():
        values[var] = 1.0 if end_event[name] == i else 0.0

    # -- times --------------------------------------------------------------
    for i, var in model.t_event.items():
        values[var] = min(max(event_time[i], 0.0), model.T)
    for request in requests:
        _, start, end = schedule[request.name]
        for var, at in (
            (model.t_start[request.name], start),
            (model.t_end[request.name], end),
        ):
            values[var] = min(max(at, var.lb), var.ub)

    # -- explicit state allocations -----------------------------------------
    # a request is active at the states spanned by [start event, end
    # event); its allocation there equals the alloc expression under the
    # embedding values above, and 0 elsewhere
    alloc_cache: dict[tuple[str, object], float] = {}
    for (name, state, resource), var in model.state_alloc.items():
        if not start_event[name] <= state < end_event[name]:
            values[var] = 0.0
            continue
        key = (name, resource)
        amount = alloc_cache.get(key)
        if amount is None:
            expr = model.embeddings[name].alloc(resource)
            amount = expr.constant + sum(
                coef * values[term] for term, coef in expr.terms.items()
            )
            alloc_cache[key] = amount
        values[var] = amount
    return values


def validated_warm_start(
    model,
    schedule: Schedule,
    flow_values: Mapping[str, float] | None = None,
):
    """A :func:`schedule_warm_start` vetted against the compiled form.

    Returns the full assignment vector (ready to pass as the backends'
    ``warm_start``) when the construction succeeds *and* validates
    feasible, else ``None``.  Construction failures are never allowed
    to escape — a warm start is an optimization, not a dependency.

    Compiling the form here also primes the model's standard-form memo,
    so the subsequent backend solve reuses the same matrices (a cache
    hit instead of a second assembly).
    """
    from repro.mip.warm_start import coerce_assignment, validate_assignment
    from repro.observability import get_registry

    metrics = get_registry()
    try:
        assignment = schedule_warm_start(model, schedule, flow_values)
    except Exception:
        logger.debug("warm-start construction failed", exc_info=True)
        metrics.inc("warmstart.discarded")
        return None
    if assignment is None:
        metrics.inc("warmstart.discarded")
        return None
    form = model.model.to_standard_form()
    x = coerce_assignment(form, assignment)
    if x is None:
        metrics.inc("warmstart.discarded")
        return None
    reason = validate_assignment(form, x)
    if reason is not None:
        logger.debug("warm start dropped as infeasible: %s", reason)
        metrics.inc("warmstart.discarded")
        return None
    metrics.inc("warmstart.validated")
    return x
