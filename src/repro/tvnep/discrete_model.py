"""A discrete-time (slotted) TVNEP baseline.

The paper argues for *continuous*-time formulations because they avoid
"inaccuracies due to time discretizations" (Sec. III).  This module
implements the alternative the paper argues against — a classic
time-indexed MIP over a uniform slot grid — so the trade-off can be
measured instead of asserted:

* **accuracy**: start times are restricted to multiples of the slot
  length, so a discretized model may reject schedules (and revenue)
  that the continuous models accept; on adversarial instances (e.g.
  durations just over a slot boundary) the loss is unbounded;
* **size**: the model carries one activity variable per (request,
  slot), so refining the grid to recover accuracy blows up the model —
  ``benchmarks/bench_ablation_discretization.py`` quantifies both.

Semantics: a request occupies the *closed-open* slot range
``[start_slot, start_slot + ceil(d / slot))``; its real start time is
``start_slot * slot`` and it runs for its true duration (the slot
footprint conservatively over-reserves the tail, the standard
time-indexed relaxation-safe choice).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping, Sequence

from repro.exceptions import ValidationError
from repro.mip.expr import LinExpr, Variable, quicksum
from repro.mip.model import Model, ObjectiveSense
from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.tvnep.solution import ScheduledRequest, TemporalSolution
from repro.vnep.embedding_vars import EmbeddingVariables, NodeMapping

__all__ = ["DiscreteTimeModel"]


class DiscreteTimeModel:
    """Time-indexed TVNEP over a uniform slot grid.

    Parameters
    ----------
    substrate, requests:
        The instance.
    slot_length:
        Grid resolution; must be > 0.
    fixed_mappings / force_embedded / force_rejected:
        Same semantics as the continuous models.
    time_horizon:
        ``T``; defaults to the latest window end, rounded up to a slot.
    """

    formulation_name = "discrete"

    def __init__(
        self,
        substrate: SubstrateNetwork,
        requests: Sequence[Request],
        slot_length: float,
        fixed_mappings: Mapping[str, NodeMapping] | None = None,
        force_embedded: Sequence[str] = (),
        force_rejected: Sequence[str] = (),
        time_horizon: float | None = None,
    ) -> None:
        if slot_length <= 0:
            raise ValidationError("slot length must be > 0")
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ValidationError("request names must be unique")
        if not requests:
            raise ValidationError("TVNEP needs at least one request")

        self.substrate = substrate
        self.requests = list(requests)
        self.slot = float(slot_length)
        horizon = time_horizon
        if horizon is None:
            horizon = max(r.latest_end for r in requests)
        self.num_slots = max(1, math.ceil(horizon / self.slot - 1e-9))
        self.T = self.num_slots * self.slot
        self.model = Model(self.formulation_name)

        fixed_mappings = fixed_mappings or {}
        self.embeddings: dict[str, EmbeddingVariables] = {}
        for request in self.requests:
            self.embeddings[request.name] = EmbeddingVariables(
                self.model,
                substrate,
                request,
                fixed_mapping=fixed_mappings.get(request.name),
                force_embedded=request.name in force_embedded,
                force_rejected=request.name in force_rejected,
            )

        #: start-slot indicators ``y[(request, slot_index)]``
        self.start_slot: dict[tuple[str, int], Variable] = {}
        #: slot footprint length per request
        self.slots_needed: dict[str, int] = {}
        self._admissible: dict[str, list[int]] = {}
        for request in self.requests:
            name = request.name
            needed = max(1, math.ceil(request.duration / self.slot - 1e-9))
            self.slots_needed[name] = needed
            slots = self._admissible_start_slots(request, needed)
            self._admissible[name] = slots
            for slot_index in slots:
                self.start_slot[(name, slot_index)] = self.model.binary_var(
                    f"y[{name}][t{slot_index}]"
                )
            starts = quicksum(
                self.start_slot[(name, s)] for s in slots
            )
            # embedded iff exactly one start slot chosen; a request with
            # no admissible slot at this grid is forcibly rejected
            if slots:
                self.model.add_constr(
                    starts == self.embeddings[name].x_embed,
                    name=f"startslot[{name}]",
                )
            else:
                self.model.fix_var(self.embeddings[name].x_embed, 0.0)

        self._build_capacity_constraints()
        self.set_access_control_objective()

    # ------------------------------------------------------------------
    def _admissible_start_slots(self, request: Request, needed: int) -> list[int]:
        """Grid starts whose true schedule fits the request's window."""
        slots = []
        for slot_index in range(self.num_slots - needed + 1):
            start_time = slot_index * self.slot
            if start_time < request.earliest_start - 1e-9:
                continue
            if start_time + request.duration > request.latest_end + 1e-9:
                continue
            slots.append(slot_index)
        return slots

    def _active_expr(self, name: str, slot_index: int) -> LinExpr:
        """1 iff the request's footprint covers ``slot_index``."""
        expr = LinExpr()
        needed = self.slots_needed[name]
        for start in self._admissible[name]:
            if start <= slot_index < start + needed:
                expr.add_term(self.start_slot[(name, start)], 1.0)
        return expr

    def _build_capacity_constraints(self) -> None:
        # per slot and resource: sum of active requests' allocations.
        # the activity indicator gates the (static) allocation via the
        # same big-M device as the Sigma-Model's Constraint (7).
        for slot_index in range(self.num_slots):
            for resource in self.substrate.resources:
                capacity = self.substrate.capacity(resource)
                usage = LinExpr()
                relevant = False
                for request in self.requests:
                    name = request.name
                    emb = self.embeddings[name]
                    alloc = emb.alloc(resource)
                    if not alloc.terms:
                        continue
                    active = self._active_expr(name, slot_index)
                    if not active.terms:
                        continue
                    relevant = True
                    big_m = emb.alloc_upper_bound(resource)
                    a = self.model.continuous_var(
                        f"aD[{name}][t{slot_index}][{resource}]", lb=0.0
                    )
                    self.model.add_constr(
                        a >= alloc - (1 - active) * big_m,
                        name=f"slotLB[{name}][t{slot_index}][{resource}]",
                    )
                    usage.add_term(a, 1.0)
                if relevant:
                    self.model.add_constr(
                        usage <= capacity,
                        name=f"slotcap[t{slot_index}][{resource}]",
                    )

    # ------------------------------------------------------------------
    def set_access_control_objective(self) -> None:
        """Maximize accepted revenue (Sec. IV-E.1)."""
        self.model.set_objective(
            quicksum(
                emb.x_embed * emb.request.revenue()
                for emb in self.embeddings.values()
            ),
            ObjectiveSense.MAXIMIZE,
        )

    def stats(self) -> dict[str, int]:
        return self.model.stats()

    # ------------------------------------------------------------------
    def solve(self, backend: str = "highs", **kwargs) -> TemporalSolution:
        from repro.mip import solve

        raw = solve(self.model, backend=backend, **kwargs)
        return self.extract(raw)

    def extract(self, raw) -> TemporalSolution:
        scheduled: dict[str, ScheduledRequest] = {}
        for request in self.requests:
            name = request.name
            emb = self.embeddings[name]
            embedded = raw.has_solution and raw.rounded(emb.x_embed) == 1
            start = request.earliest_start
            if embedded:
                for slot_index in self._admissible[name]:
                    if raw.rounded(self.start_slot[(name, slot_index)]) == 1:
                        start = slot_index * self.slot
                        break
            node_mapping: dict[Hashable, Hashable] = {}
            link_flows: dict[tuple, dict[tuple, float]] = {}
            if embedded:
                for (v, s), var in emb.x_node.items():
                    if raw.rounded(var) == 1:
                        node_mapping[v] = s
                for (lv, ls), var in emb.x_link.items():
                    value = raw.value(var)
                    if value > 1e-7:
                        link_flows.setdefault(lv, {})[ls] = min(value, 1.0)
            scheduled[name] = ScheduledRequest(
                request=request,
                embedded=embedded,
                start=start,
                end=start + request.duration,
                node_mapping=node_mapping,
                link_flows=link_flows,
            )
        return TemporalSolution(
            self.substrate,
            scheduled,
            objective=raw.objective if raw.has_solution else math.nan,
            model_name=self.formulation_name,
            runtime=raw.runtime,
            gap=raw.gap,
            node_count=raw.node_count,
        )
