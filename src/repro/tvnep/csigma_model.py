"""The cSigma-Model — the paper's main contribution (Sec. IV).

The cSigma-Model compactifies the Sigma-Model's event space from
``2|R|`` to ``|R|+1`` events:

* request *starts* are bijectively assigned to events ``e_1 .. e_|R|``
  (Constraints 10/12) — only starts can increase allocations, so only
  start-induced states need checking;
* request *ends* map many-to-one onto events ``e_2 .. e_{|R|+1}``
  (Constraint 11), with the semantics "ended within
  ``[t_{e_{i-1}}, t_{e_i}]``" (Constraints 16/17) — collapsing the
  ``2^k`` end-order symmetries the paper describes in Sec. IV-D.

On top of the compactification the model enables (by default) the
temporal dependency-graph cuts (Constraint 19 as event-range
restrictions, Constraint 20 as pairwise precedence cuts) and the
presolve state-space reduction of Sec. IV-C.  All switches live in
:class:`~repro.tvnep.base.ModelOptions` so ablations can turn each off
independently (``benchmarks/bench_ablation_cuts.py``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.network.request import Request
from repro.network.substrate import SubstrateNetwork
from repro.tvnep.base import ModelOptions, TemporalModelBase
from repro.tvnep.sigma_model import ExplicitStateMixin
from repro.vnep.embedding_vars import NodeMapping

__all__ = ["CSigmaModel"]


class CSigmaModel(ExplicitStateMixin, TemporalModelBase):
    """The compact state model cSigma (all reductions on by default)."""

    layout = "compact"
    formulation_name = "csigma"

    def __init__(
        self,
        substrate: SubstrateNetwork,
        requests: Sequence[Request],
        fixed_mappings: Mapping[str, NodeMapping] | None = None,
        force_embedded: Sequence[str] = (),
        force_rejected: Sequence[str] = (),
        options: ModelOptions | None = None,
    ) -> None:
        super().__init__(
            substrate,
            requests,
            fixed_mappings=fixed_mappings,
            force_embedded=force_embedded,
            force_rejected=force_rejected,
            options=options or ModelOptions(),
        )
